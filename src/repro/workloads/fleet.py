"""Fleet-scale batch scheduling over many tamper-evident stores.

The ROADMAP's north star is fleet-scale throughput: a provisioning or
compliance service does not format and audit one device, it runs whole
racks of them.  A :class:`FleetScheduler` drives four passes over every
member of a fleet —

* :meth:`~FleetScheduler.format_fleet` — the vectorized format-time
  defect scan;
* :meth:`~FleetScheduler.seal_fleet` — provision + heat lines on every
  device (the write-once bulk load);
* :meth:`~FleetScheduler.audit_fleet` — the batched line-verification
  sweep (the compliance hot path);
* :meth:`~FleetScheduler.fsck_fleet` — the deep consistency pass
  (file-system fsck where a member has one, device-registry
  verification otherwise)

— and dispatches them on a named *fleet executor*
(:mod:`repro.parallel`: ``serial`` / ``thread`` / ``process`` /
``rpc`` — the last shipping members to worker daemons on other
machines, see :mod:`repro.parallel.remote`),
resolved lazily through the execution-policy chain at every pass
(explicit constructor pin > ``with repro.engine(executor=...)`` >
installed policy > ``REPRO_FLEET_EXECUTOR`` read at dispatch time).
Per-member results are byte-identical across executors: each member
owns its RNG, the thread executor propagates the ambient policy
context, and the process executor ships members to workers as compact
snapshots and reinstalls the mutated state.

The :class:`FleetReport` aggregates throughput both in simulator
wall-clock (blocks/s of host time, with the per-worker wall breakdown)
and in simulated device time — including
:attr:`~FleetReport.simulated_makespan_seconds`, the rack's completion
time when each worker's members run concurrently, which is what a
parallel rack actually buys.

Fleet members are :class:`~repro.api.store.TamperEvidentStore`
instances; passing bare :class:`~repro.device.sero.SERODevice` objects
still works (they are wrapped in device-grain stores) but is
deprecated — the shared :func:`repro.api.fleet.coerce_member` handles
both.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..api.fleet import coerce_member, fold_member_state
from ..api.store import StoreStatePatch, TamperEvidentStore
from ..device.sero import BLOCK_SIZE, DeviceConfig, SERODevice
from ..errors import ConfigurationError
from ..units import is_power_of_two
from ..device.timing import TimingModel
from ..medium.medium import MediumConfig
from ..parallel import (FleetExecutor, MemberFailure, WorkerWall,
                        resolve_fleet_executor)


@dataclass
class DeviceReport:
    """Per-store outcome of one fleet pass.

    Attributes:
        device_index: position of the store in the fleet.
        blocks: physical blocks the pass covered.
        bad_blocks: blocks the format scan marked bad.
        fragile_blocks: blocks unusable as line heads.
        lines_sealed: lines the seal pass heated.
        line_hashes: hashes of the lines sealed by the pass (seal
            passes only; the byte-level fingerprint equivalence tests
            compare across executors).
        lines_verified: sealed lines audited.
        intact_lines: lines whose hash verified INTACT.
        tampered_lines: lines with tamper evidence.
        fs_errors: consistency errors found by a fsck pass.
        fs_warnings: consistency warnings found by a fsck pass.
        device_seconds: simulated device time consumed by the pass.
        worker: executor worker that ran this member's task.
    """

    device_index: int
    blocks: int
    bad_blocks: int = 0
    fragile_blocks: int = 0
    lines_sealed: int = 0
    line_hashes: Tuple[bytes, ...] = ()
    lines_verified: int = 0
    intact_lines: int = 0
    tampered_lines: int = 0
    fs_errors: int = 0
    fs_warnings: int = 0
    device_seconds: float = 0.0
    worker: str = "serial-0"

    def fingerprint(self) -> Tuple:
        """The executor-invariant content of this report: everything
        except which worker happened to run it.  Byte-identical across
        ``serial``/``thread``/``process`` dispatch."""
        return (self.device_index, self.blocks, self.bad_blocks,
                self.fragile_blocks, self.lines_sealed, self.line_hashes,
                self.lines_verified, self.intact_lines,
                self.tampered_lines, self.fs_errors, self.fs_warnings,
                self.device_seconds)


@dataclass
class FleetReport:
    """Aggregate outcome of a fleet-wide pass.

    Attributes:
        operation: ``"format"``, ``"seal"``, ``"audit"`` or ``"fsck"``.
        devices: per-store breakdown.
        wall_seconds: simulator wall-clock for the whole pass.
        executor: name of the executor that dispatched the pass.
        workers: workers the executor actually used.
        worker_walls: per-worker host wall-clock breakdown (for the
            ``rpc`` executor one entry per remote host, labelled
            ``rpc-host:port`` — the per-host wall an operator reads
            when one rack node drags the pass).
        hosts: remote worker addresses the pass dispatched to (empty
            for in-host executors).
        bytes_out: wire payload bytes sent per remote host this pass
            (empty for in-host executors) — in session mode the
            steady-state audit figure drops from snapshot-sized to
            descriptor-sized, and this is where that win is visible.
        bytes_back: wire payload bytes received per remote host.
        failures: members the pass could not complete, as typed
            :class:`~repro.parallel.MemberFailure` records — non-empty
            only under the rpc executor's ``on_failure="degrade"``
            mode.  A failed member folded *nothing*: its store is
            exactly as the pass found it, and :attr:`devices` simply
            has no entry for it.
        retries: failover re-dispatches charged per remote host (the
            host that *failed*, not the one that recovered the work).
        timeouts: request deadline expiries per remote host.
    """

    operation: str
    devices: List[DeviceReport] = field(default_factory=list)
    wall_seconds: float = 0.0
    executor: str = "serial"
    workers: int = 1
    worker_walls: List[WorkerWall] = field(default_factory=list)
    hosts: Tuple[str, ...] = ()
    bytes_out: Dict[str, int] = field(default_factory=dict)
    bytes_back: Dict[str, int] = field(default_factory=dict)
    failures: List["MemberFailure"] = field(default_factory=list)
    retries: Dict[str, int] = field(default_factory=dict)
    timeouts: Dict[str, int] = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        """Whether any member failed out of the pass."""
        return bool(self.failures)

    @property
    def device_count(self) -> int:
        """Stores covered by the pass."""
        return len(self.devices)

    @property
    def blocks_processed(self) -> int:
        """Total blocks covered by the pass."""
        return sum(d.blocks for d in self.devices)

    @property
    def blocks_per_second(self) -> float:
        """Aggregate simulator throughput [blocks/s of wall time].

        A pass too fast for the clock to resolve reports ``0.0``
        (unmeasurable), never ``inf``.
        """
        if self.wall_seconds <= 0:
            return 0.0
        return self.blocks_processed / self.wall_seconds

    @property
    def lines_sealed(self) -> int:
        """Lines heated across the fleet (seal passes)."""
        return sum(d.lines_sealed for d in self.devices)

    @property
    def lines_verified(self) -> int:
        """Sealed lines audited across the fleet."""
        return sum(d.lines_verified for d in self.devices)

    @property
    def intact_lines(self) -> int:
        """Fleet-wide count of INTACT line verdicts."""
        return sum(d.intact_lines for d in self.devices)

    @property
    def tampered_lines(self) -> int:
        """Fleet-wide count of tamper-evident line verdicts."""
        return sum(d.tampered_lines for d in self.devices)

    @property
    def fs_errors(self) -> int:
        """Fleet-wide consistency errors (fsck passes)."""
        return sum(d.fs_errors for d in self.devices)

    @property
    def device_seconds(self) -> float:
        """Total simulated device time consumed by the pass."""
        return sum(d.device_seconds for d in self.devices)

    @property
    def simulated_makespan_seconds(self) -> float:
        """Simulated completion time of the pass as dispatched.

        Each worker drives its members sequentially while workers run
        concurrently, so the rack finishes when its slowest worker
        does: the max over workers of their summed device time.  For
        the serial executor this equals :attr:`device_seconds`; for a
        balanced parallel dispatch it approaches ``device_seconds /
        workers`` — the quantity a sharded rack actually improves.
        """
        per_worker: Dict[str, float] = {}
        for dev in self.devices:
            per_worker[dev.worker] = \
                per_worker.get(dev.worker, 0.0) + dev.device_seconds
        return max(per_worker.values(), default=0.0)

    def fingerprints(self) -> List[Tuple]:
        """Executor-invariant per-device content, fleet order."""
        return [d.fingerprint() for d in self.devices]


# ---------------------------------------------------------------------------
# Per-member pass tasks.  Module level (the process executor pickles
# them by reference); each returns ``(DeviceReport, state)`` where
# ``state`` is either the member store itself (in-process dispatch) or
# — for read-only passes crossing a process boundary — a compact
# :class:`~repro.api.store.StoreStatePatch`, so a worker never ships
# unchanged medium arrays home.


def _member_state(store: TamperEvidentStore, patch_return: bool):
    return StoreStatePatch.capture(store) if patch_return else store


def _format_member(index: int, store: TamperEvidentStore
                   ) -> Tuple[DeviceReport, TamperEvidentStore]:
    scan = store.format_device()
    return DeviceReport(
        device_index=index, blocks=scan.blocks,
        bad_blocks=scan.bad_blocks, fragile_blocks=scan.fragile_blocks,
        device_seconds=scan.device_seconds), store


def _audit_member(index: int, store: TamperEvidentStore,
                  patch_return: bool = False
                  ) -> Tuple[DeviceReport, object]:
    audit = store.audit()
    return DeviceReport(
        device_index=index, blocks=store.device.total_blocks,
        lines_verified=audit.lines_verified,
        intact_lines=audit.intact_count,
        tampered_lines=len(audit.tampered),
        device_seconds=audit.device_seconds), \
        _member_state(store, patch_return)


def _seal_member(index: int, store: TamperEvidentStore,
                 lines_per_device: int, line_blocks: int,
                 payload: bytes, timestamp: int
                 ) -> Tuple[DeviceReport, TamperEvidentStore]:
    device = store.device
    before = device.account.elapsed
    hashes: List[bytes] = []
    start = 0
    while len(hashes) < lines_per_device and \
            start + line_blocks <= device.total_blocks:
        span = range(start, start + line_blocks)
        usable = (start not in device.fragile_blocks
                  and not any(pba in device.bad_blocks for pba in span)
                  and not any(device.is_block_heated(pba) for pba in span))
        if usable:
            for pba in span[1:]:
                device.write_block(pba, payload)
            record = device.heat_line(start, line_blocks,
                                      timestamp=timestamp)
            hashes.append(record.line_hash)
        start += line_blocks
    return DeviceReport(
        device_index=index, blocks=len(hashes) * line_blocks,
        lines_sealed=len(hashes), line_hashes=tuple(hashes),
        device_seconds=device.account.elapsed - before), store


def _fsck_member(index: int, store: TamperEvidentStore,
                 patch_return: bool = False
                 ) -> Tuple[DeviceReport, object]:
    device = store.device
    before = device.account.elapsed
    if store.fs is not None:
        from ..fs.fsck import fsck

        fs_report = fsck(store.fs, verify_lines=True)
        results = list(fs_report.heated_verifications.values())
        errors, warnings_ = len(fs_report.errors), len(fs_report.warnings)
    else:
        # device-grain member: verify the line registry itself
        results = device.verify_all()
        errors = sum(1 for r in results if r.tamper_evident)
        warnings_ = 0
    intact = sum(1 for r in results if not r.tamper_evident)
    return DeviceReport(
        device_index=index, blocks=device.total_blocks,
        lines_verified=len(results), intact_lines=intact,
        tampered_lines=sum(1 for r in results if r.tamper_evident),
        fs_errors=errors, fs_warnings=warnings_,
        device_seconds=device.account.elapsed - before), \
        _member_state(store, patch_return)


#: Deterministic default payload for seal passes (any 512-byte
#: pattern works; the hash binds it to each block's address).
_SEAL_PAYLOAD = bytes(range(256)) * (BLOCK_SIZE // 256)


class FleetScheduler:
    """Formats, seals and audits a fleet of tamper-evident stores.

    Args:
        members: the fleet — :class:`TamperEvidentStore` instances
            (bare :class:`SERODevice` members are wrapped, with a
            :class:`DeprecationWarning`).  See :meth:`build` for a
            convenience constructor with per-device seeds.
        executor: fleet dispatch pin — a registered executor name or a
            ready :class:`~repro.parallel.FleetExecutor` instance;
            None resolves through the lazy policy chain *at each
            pass*, so exporting ``REPRO_FLEET_EXECUTOR`` after the
            scheduler is built still takes effect.
        max_workers: worker bound for pool executors (None resolves
            through the chain; default one per CPU core).
    """

    def __init__(self, members: Sequence[Union[TamperEvidentStore,
                                               SERODevice]], *,
                 executor: Union[None, str, FleetExecutor] = None,
                 max_workers: Optional[int] = None) -> None:
        self.stores: List[TamperEvidentStore] = []
        for member in members:  # plain loop: the deprecation warning
            # must attribute to the caller on every Python version
            self.stores.append(
                coerce_member(member, owner="FleetScheduler"))
        self._executor = executor
        self._max_workers = max_workers

    @property
    def devices(self) -> List[SERODevice]:
        """The underlying devices, fleet order."""
        return [store.device for store in self.stores]

    @classmethod
    def build(cls, n_devices: int, blocks_per_device: int,
              switching_sigma: float = 0.0, seed: int = 2008,
              timing: Optional[TimingModel] = None,
              config: Optional[DeviceConfig] = None,
              executor: Union[None, str, FleetExecutor] = None,
              max_workers: Optional[int] = None) -> "FleetScheduler":
        """Provision ``n_devices`` fresh device-grain stores with
        distinct media seeds (each device is an independent physical
        sample)."""
        stores = []
        for i in range(n_devices):
            medium_config = MediumConfig(switching_sigma=switching_sigma,
                                         seed=seed + i)
            device = SERODevice.create(
                blocks_per_device, medium_config=medium_config,
                timing=timing, config=config)
            stores.append(TamperEvidentStore.attach(device))
        return cls(stores, executor=executor, max_workers=max_workers)

    # -- dispatch ---------------------------------------------------------------

    def _run_pass(self, operation: str, make_tasks) -> FleetReport:
        """Dispatch one fleet pass on the resolved executor and fold
        the outcome into a :class:`FleetReport`.

        ``make_tasks(patch_return)`` builds the member tasks;
        ``patch_return`` is True for executors whose results cross a
        process boundary, letting read-only passes return compact
        state patches instead of whole member snapshots.
        """
        executor = resolve_fleet_executor(self._executor, self._max_workers)
        tasks = make_tasks(executor.crosses_process)
        report = FleetReport(operation=operation, executor=executor.name)
        t0 = time.perf_counter()
        outcome = executor.run(tasks)
        report.wall_seconds = time.perf_counter() - t0
        for i, (result, worker) in enumerate(
                zip(outcome.results, outcome.assignments)):
            if isinstance(result, MemberFailure):
                # degraded pass: this member folded nothing — its
                # store is untouched and the report carries the typed
                # failure instead of a device entry
                report.failures.append(result)
                continue
            device_report, state = result
            fold_member_state(self.stores[i], state)
            device_report.worker = worker
            report.devices.append(device_report)
        report.workers = outcome.workers
        report.worker_walls = outcome.worker_walls
        report.hosts = outcome.hosts
        report.bytes_out = dict(outcome.bytes_out)
        report.bytes_back = dict(outcome.bytes_back)
        report.retries = dict(outcome.retries)
        report.timeouts = dict(outcome.timeouts)
        return report

    # -- passes ------------------------------------------------------------------

    def format_fleet(self) -> FleetReport:
        """Run the format-time surface scan on every store."""
        return self._run_pass("format", lambda _patch: [
            partial(_format_member, i, store)
            for i, store in enumerate(self.stores)])

    def seal_fleet(self, lines_per_device: int = 1, line_blocks: int = 2,
                   payload: Optional[bytes] = None,
                   timestamp: int = 0) -> FleetReport:
        """Provision and heat lines across the fleet (bulk load).

        Each member writes ``payload`` into the data blocks of up to
        ``lines_per_device`` aligned, defect-free, unheated lines of
        ``line_blocks`` blocks and heats them — the rack-provisioning
        idiom that turns fresh devices into sealed evidence carriers.
        The per-device :attr:`DeviceReport.line_hashes` record the
        sealed content fingerprints.
        """
        if payload is None:
            payload = _SEAL_PAYLOAD
        if len(payload) != BLOCK_SIZE:
            raise ValueError(f"seal payload must be {BLOCK_SIZE} bytes")
        if line_blocks < 2 or not is_power_of_two(line_blocks):
            raise ValueError(
                f"line_blocks must be a power of two >= 2, got "
                f"{line_blocks}")  # fail before any device is written
        fs_members = [i for i, store in enumerate(self.stores)
                      if store.fs is not None]
        if fs_members:
            raise ConfigurationError(
                "seal_fleet provisions device-grain members by writing "
                f"raw blocks, but member(s) {fs_members} carry a file "
                "system whose superblock/checkpoint a raw seal would "
                "destroy; seal their objects through the store surface "
                "instead (seal/seal_many, or FleetStore.seal_many)")
        return self._run_pass("seal", lambda _patch: [
            partial(_seal_member, i, store, lines_per_device, line_blocks,
                    payload, timestamp)
            for i, store in enumerate(self.stores)])

    def audit_fleet(self) -> FleetReport:
        """Audit every store: each runs its batched
        :meth:`~repro.api.store.TamperEvidentStore.audit` sweep
        (one bulk ``verify_lines`` pass per device).  Under a
        process executor each worker sends home a ~1 kB state patch,
        not the member snapshot — an audit never writes the medium."""
        return self._run_pass("audit", lambda patch: [
            partial(_audit_member, i, store, patch)
            for i, store in enumerate(self.stores)])

    def fsck_fleet(self) -> FleetReport:
        """Deep-check every store: file-system fsck (imap, block
        ownership, directory tree, line verification) where a member
        has a file system, device-registry verification otherwise."""
        return self._run_pass("fsck", lambda patch: [
            partial(_fsck_member, i, store, patch)
            for i, store in enumerate(self.stores)])
