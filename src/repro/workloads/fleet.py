"""Fleet-scale batch scheduling over many SERO devices.

The ROADMAP's north star is fleet-scale throughput: a provisioning or
compliance service does not format and audit one device, it runs whole
racks of them.  This module gives that scale a measurable surface: a
:class:`FleetScheduler` drives the batched engines — the vectorized
format-time defect scan and the batched line-verification sweep —
across every device of a fleet and reports aggregate throughput, both
in simulator wall-clock (blocks/s of host time) and in simulated
device time (the :class:`~repro.device.timing.CostAccount` clock).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..device.sero import DeviceConfig, SERODevice, VerifyStatus
from ..device.timing import TimingModel
from ..medium.medium import MediumConfig


@dataclass
class DeviceReport:
    """Per-device outcome of one fleet pass.

    Attributes:
        device_index: position of the device in the fleet.
        blocks: total physical blocks.
        bad_blocks: blocks the format scan marked bad.
        fragile_blocks: blocks unusable as line heads.
        lines_verified: heated lines audited.
        intact_lines: lines whose hash verified INTACT.
        tampered_lines: lines with tamper evidence.
        device_seconds: simulated device time consumed by the pass.
    """

    device_index: int
    blocks: int
    bad_blocks: int = 0
    fragile_blocks: int = 0
    lines_verified: int = 0
    intact_lines: int = 0
    tampered_lines: int = 0
    device_seconds: float = 0.0


@dataclass
class FleetReport:
    """Aggregate outcome of a fleet-wide format or audit pass.

    Attributes:
        operation: ``"format"`` or ``"audit"``.
        devices: per-device breakdown.
        wall_seconds: simulator wall-clock for the whole pass.
    """

    operation: str
    devices: List[DeviceReport] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def device_count(self) -> int:
        """Devices covered by the pass."""
        return len(self.devices)

    @property
    def blocks_processed(self) -> int:
        """Total blocks covered by the pass."""
        return sum(d.blocks for d in self.devices)

    @property
    def blocks_per_second(self) -> float:
        """Aggregate simulator throughput [blocks/s of wall time]."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.blocks_processed / self.wall_seconds

    @property
    def lines_verified(self) -> int:
        """Heated lines audited across the fleet."""
        return sum(d.lines_verified for d in self.devices)

    @property
    def intact_lines(self) -> int:
        """Fleet-wide count of INTACT line verdicts."""
        return sum(d.intact_lines for d in self.devices)

    @property
    def tampered_lines(self) -> int:
        """Fleet-wide count of tamper-evident line verdicts."""
        return sum(d.tampered_lines for d in self.devices)

    @property
    def device_seconds(self) -> float:
        """Total simulated device time consumed by the pass."""
        return sum(d.device_seconds for d in self.devices)


class FleetScheduler:
    """Formats and audits a multi-device fleet with the batched engines.

    Args:
        devices: the fleet members (see :meth:`build` for a convenience
            constructor with per-device seeds).
    """

    def __init__(self, devices: Sequence[SERODevice]) -> None:
        self.devices = list(devices)

    @classmethod
    def build(cls, n_devices: int, blocks_per_device: int,
              switching_sigma: float = 0.0, seed: int = 2008,
              timing: Optional[TimingModel] = None,
              config: Optional[DeviceConfig] = None) -> "FleetScheduler":
        """Provision ``n_devices`` fresh devices with distinct media
        seeds (each device is an independent physical sample)."""
        devices = []
        for i in range(n_devices):
            medium_config = MediumConfig(switching_sigma=switching_sigma,
                                         seed=seed + i)
            devices.append(SERODevice.create(
                blocks_per_device, medium_config=medium_config,
                timing=timing, config=config))
        return cls(devices)

    def format_fleet(self) -> FleetReport:
        """Run the format-time surface scan on every device."""
        report = FleetReport(operation="format")
        t0 = time.perf_counter()
        for i, device in enumerate(self.devices):
            elapsed_before = device.account.elapsed
            device.format()
            report.devices.append(DeviceReport(
                device_index=i, blocks=device.total_blocks,
                bad_blocks=len(device.bad_blocks),
                fragile_blocks=len(device.fragile_blocks),
                device_seconds=device.account.elapsed - elapsed_before))
        report.wall_seconds = time.perf_counter() - t0
        return report

    def audit_fleet(self) -> FleetReport:
        """Verify every registered heated line on every device, using
        the batched :meth:`~repro.device.sero.SERODevice.verify_lines`
        sweep per device."""
        report = FleetReport(operation="audit")
        t0 = time.perf_counter()
        for i, device in enumerate(self.devices):
            elapsed_before = device.account.elapsed
            results = device.verify_lines(
                [rec.start for rec in device.heated_lines])
            intact = sum(1 for r in results
                         if r.status is VerifyStatus.INTACT)
            tampered = sum(1 for r in results if r.tamper_evident)
            report.devices.append(DeviceReport(
                device_index=i, blocks=device.total_blocks,
                lines_verified=len(results), intact_lines=intact,
                tampered_lines=tampered,
                device_seconds=device.account.elapsed - elapsed_before))
        report.wall_seconds = time.perf_counter() - t0
        return report
