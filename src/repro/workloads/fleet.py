"""Fleet-scale batch scheduling over many tamper-evident stores.

The ROADMAP's north star is fleet-scale throughput: a provisioning or
compliance service does not format and audit one device, it runs whole
racks of them.  This module gives that scale a measurable surface: a
:class:`FleetScheduler` drives the façade's batched device-grain
operations — :meth:`~repro.api.store.TamperEvidentStore.format_device`
(the vectorized format-time defect scan) and
:meth:`~repro.api.store.TamperEvidentStore.audit` (the batched
line-verification sweep) — across every member of a fleet and reports
aggregate throughput, both in simulator wall-clock (blocks/s of host
time) and in simulated device time (the
:class:`~repro.device.timing.CostAccount` clock).

Fleet members are :class:`~repro.api.store.TamperEvidentStore`
instances; passing bare :class:`~repro.device.sero.SERODevice` objects
still works (they are wrapped in device-grain stores) but is
deprecated.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from ..api.store import TamperEvidentStore
from ..device.sero import DeviceConfig, SERODevice
from ..device.timing import TimingModel
from ..medium.medium import MediumConfig


@dataclass
class DeviceReport:
    """Per-store outcome of one fleet pass.

    Attributes:
        device_index: position of the store in the fleet.
        blocks: total physical blocks.
        bad_blocks: blocks the format scan marked bad.
        fragile_blocks: blocks unusable as line heads.
        lines_verified: sealed lines audited.
        intact_lines: lines whose hash verified INTACT.
        tampered_lines: lines with tamper evidence.
        device_seconds: simulated device time consumed by the pass.
    """

    device_index: int
    blocks: int
    bad_blocks: int = 0
    fragile_blocks: int = 0
    lines_verified: int = 0
    intact_lines: int = 0
    tampered_lines: int = 0
    device_seconds: float = 0.0


@dataclass
class FleetReport:
    """Aggregate outcome of a fleet-wide format or audit pass.

    Attributes:
        operation: ``"format"`` or ``"audit"``.
        devices: per-store breakdown.
        wall_seconds: simulator wall-clock for the whole pass.
    """

    operation: str
    devices: List[DeviceReport] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def device_count(self) -> int:
        """Stores covered by the pass."""
        return len(self.devices)

    @property
    def blocks_processed(self) -> int:
        """Total blocks covered by the pass."""
        return sum(d.blocks for d in self.devices)

    @property
    def blocks_per_second(self) -> float:
        """Aggregate simulator throughput [blocks/s of wall time]."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.blocks_processed / self.wall_seconds

    @property
    def lines_verified(self) -> int:
        """Sealed lines audited across the fleet."""
        return sum(d.lines_verified for d in self.devices)

    @property
    def intact_lines(self) -> int:
        """Fleet-wide count of INTACT line verdicts."""
        return sum(d.intact_lines for d in self.devices)

    @property
    def tampered_lines(self) -> int:
        """Fleet-wide count of tamper-evident line verdicts."""
        return sum(d.tampered_lines for d in self.devices)

    @property
    def device_seconds(self) -> float:
        """Total simulated device time consumed by the pass."""
        return sum(d.device_seconds for d in self.devices)


class FleetScheduler:
    """Formats and audits a fleet of tamper-evident stores.

    Args:
        members: the fleet — :class:`TamperEvidentStore` instances
            (bare :class:`SERODevice` members are wrapped, with a
            :class:`DeprecationWarning`).  See :meth:`build` for a
            convenience constructor with per-device seeds.
    """

    def __init__(self, members: Sequence[Union[TamperEvidentStore,
                                               SERODevice]]) -> None:
        self.stores: List[TamperEvidentStore] = []
        for member in members:
            if isinstance(member, TamperEvidentStore):
                self.stores.append(member)
            else:
                warnings.warn(
                    "passing bare SERODevice objects to FleetScheduler is "
                    "deprecated; pass TamperEvidentStore members (e.g. "
                    "TamperEvidentStore.attach(device))",
                    DeprecationWarning, stacklevel=2)
                self.stores.append(TamperEvidentStore.attach(member))

    @property
    def devices(self) -> List[SERODevice]:
        """The underlying devices, fleet order."""
        return [store.device for store in self.stores]

    @classmethod
    def build(cls, n_devices: int, blocks_per_device: int,
              switching_sigma: float = 0.0, seed: int = 2008,
              timing: Optional[TimingModel] = None,
              config: Optional[DeviceConfig] = None) -> "FleetScheduler":
        """Provision ``n_devices`` fresh device-grain stores with
        distinct media seeds (each device is an independent physical
        sample)."""
        stores = []
        for i in range(n_devices):
            medium_config = MediumConfig(switching_sigma=switching_sigma,
                                         seed=seed + i)
            device = SERODevice.create(
                blocks_per_device, medium_config=medium_config,
                timing=timing, config=config)
            stores.append(TamperEvidentStore.attach(device))
        return cls(stores)

    def format_fleet(self) -> FleetReport:
        """Run the format-time surface scan on every store."""
        report = FleetReport(operation="format")
        t0 = time.perf_counter()
        for i, store in enumerate(self.stores):
            scan = store.format_device()
            report.devices.append(DeviceReport(
                device_index=i, blocks=scan.blocks,
                bad_blocks=scan.bad_blocks,
                fragile_blocks=scan.fragile_blocks,
                device_seconds=scan.device_seconds))
        report.wall_seconds = time.perf_counter() - t0
        return report

    def audit_fleet(self) -> FleetReport:
        """Audit every store: each runs its batched
        :meth:`~repro.api.store.TamperEvidentStore.audit` sweep
        (one bulk ``verify_lines`` pass per device)."""
        report = FleetReport(operation="audit")
        t0 = time.perf_counter()
        for i, store in enumerate(self.stores):
            audit = store.audit()
            report.devices.append(DeviceReport(
                device_index=i, blocks=store.device.total_blocks,
                lines_verified=audit.lines_verified,
                intact_lines=audit.intact_count,
                tampered_lines=len(audit.tampered),
                device_seconds=audit.device_seconds))
        report.wall_seconds = time.perf_counter() - t0
        return report
