"""Trace-driven chaos soak: mixed fleet pressure under injected faults.

The paper's tamper-evident guarantee is only worth what the auditor
can *keep* auditing, so this harness drives a sharded rpc
:class:`~repro.api.fleet.FleetStore` through a seeded trace of mixed
ingest / seal / audit / retrieve pressure while killing, restarting
and disconnecting its workers on schedule — and continuously checks
that the fault-tolerance layer keeps three invariants:

* **no partial folds** — a failed host contributes nothing: member
  state only ever advances by whole, completed passes (probed
  directly by racing a ``retries=0`` pass against a killed worker and
  checking every member fingerprint is untouched);
* **byte identity** — after every recovery the rpc fleet's members are
  fingerprint-identical (mutation epoch, counters, RNG continuation,
  line hashes, cost account — see
  :func:`repro.parallel.session.store_fingerprint`) to a serial
  *shadow fleet* that replayed the same trace with no faults at all;
* **clean audits at checkpoints** — a full fleet audit (line verdicts
  plus file-system consistency) stays clean at every checkpoint.

Every fleet op runs in ``on_failure="raise"`` + retry mode: a fault
mid-pass must be *recovered* (failover re-dispatch to surviving
hosts), not degraded away, and the recovered pass must be
byte-identical to the shadow's.  Results land in ``BENCH_soak.json``:

    python -m repro.workloads.soak --ops 48 --workers 2

Exit status 1 when any invariant was violated.

``BENCH_soak.json`` is a **trajectory**, not a snapshot: every run
*appends* its result (and its ops/s-under-faults datapoint) instead
of overwriting the file, so regressions in fault-tolerant throughput
show up as a bend in the series rather than silently replacing the
only datapoint.  The ``trajectory`` list keeps every datapoint ever
recorded; full run payloads are bounded to the most recent
:data:`MAX_KEPT_RUNS`.  A pre-trajectory single-run file is migrated
in place as the first datapoint.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..api.fleet import FleetStore
from ..errors import ConfigurationError
from ..fs.cleaner import run_cleaner
from ..parallel.session import store_fingerprint
from ..search import EvidenceIndex

#: Fault actions a :class:`SoakFault` can schedule.
FAULT_ACTIONS = ("kill", "restart", "drop_connections")

#: Full run payloads kept in the trajectory file (the per-run series
#: itself is never truncated — one small dict per run).
MAX_KEPT_RUNS = 20


@dataclass(frozen=True)
class SoakFault:
    """One scheduled fault: before trace op ``at_op``, do ``action``
    to worker slot ``worker`` (ignored for ``drop_connections``,
    which drops every pooled client connection instead — the
    reconnect-or-fail path a flaky network exercises)."""

    at_op: int
    action: str
    worker: int = 0

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ConfigurationError(
                f"unknown soak fault action {self.action!r}; expected "
                f"one of {FAULT_ACTIONS}")
        if self.at_op < 0 or self.worker < 0:
            raise ConfigurationError(
                "soak fault at_op and worker must be >= 0")


@dataclass(frozen=True)
class SoakConfig:
    """Shape of one soak run (everything seeded and schedulable)."""

    members: int = 4
    workers: int = 2
    ops: int = 48
    seed: int = 2008
    total_blocks: int = 192
    checkpoint_every: int = 12
    retries: int = 3
    timeout: Optional[float] = 30.0
    sessions: Optional[bool] = None
    faults: Optional[Tuple[SoakFault, ...]] = None
    partial_fold_probe: bool = True
    #: LFS cleaner churn inside the trace (delete + segment-clean ops
    #: mixed into the schedule, applied identically to both twins).
    churn: bool = True
    #: After the final checkpoint: this many auditor threads race
    #: ``race_ops`` mutating ops on the live fleet (the shadow is done
    #: by then), checking the index/percolator invariants under real
    #: concurrency.  0 disables the phase.
    race_auditors: int = 2
    race_ops: int = 8
    #: Inject one real tamper at the very end and demand the standing
    #: alert fires exactly once (and only then).
    tamper_probe: bool = True

    def resolved_faults(self) -> Tuple[SoakFault, ...]:
        """The fault schedule: explicit, else the default chaos trace
        (two kills, one restart, one connection drop — the ISSUE 7
        acceptance floor)."""
        if self.faults is not None:
            return self.faults
        n = max(self.ops, 8)
        second = 1 % max(self.workers, 1)
        return (
            SoakFault(n // 4, "kill", worker=0),
            SoakFault(n // 2, "restart", worker=0),
            SoakFault(5 * n // 8, "drop_connections"),
            SoakFault(3 * n // 4, "kill", worker=second),
        )


@dataclass
class SoakReport:
    """Outcome of one soak run."""

    ops_completed: int = 0
    op_counts: Dict[str, int] = field(default_factory=dict)
    kills: int = 0
    restarts: int = 0
    connection_drops: int = 0
    checkpoints: int = 0
    audits_clean: int = 0
    violations: List[str] = field(default_factory=list)
    retries: Dict[str, int] = field(default_factory=dict)
    timeouts: Dict[str, int] = field(default_factory=dict)
    partial_fold_probe: str = "not_run"
    host_health: Dict[str, Dict[str, object]] = field(
        default_factory=dict)
    wall_seconds: float = 0.0
    #: Index/percolator invariant checks passed (rebuild identity +
    #: journal chain + zero false alerts, at every checkpoint).
    index_checks: int = 0
    #: Audits completed by the post-trace racing-auditor phase.
    race_audits: int = 0
    #: "fired_exactly" when the injected tamper raised its standing
    #: alert exactly once; "violated"; or "not_run".
    tamper_probe: str = "not_run"
    #: Tamper alerts fired across the whole run (must equal the
    #: injected tampers — zero false alerts on clean phases).
    alerts_fired: int = 0

    @property
    def clean(self) -> bool:
        """True when the soak saw zero invariant violations."""
        return not self.violations

    @property
    def ops_per_second(self) -> float:
        """Sustained trace throughput *under faults* — the number the
        trajectory series tracks across runs."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.ops_completed / self.wall_seconds

    def to_json(self) -> Dict[str, object]:
        return {
            "bench": "soak",
            "ops_per_second": round(self.ops_per_second, 3),
            "ops_completed": self.ops_completed,
            "op_counts": dict(self.op_counts),
            "kills": self.kills,
            "restarts": self.restarts,
            "connection_drops": self.connection_drops,
            "checkpoints": self.checkpoints,
            "audits_clean": self.audits_clean,
            "violations": list(self.violations),
            "failover_retries": dict(self.retries),
            "request_timeouts": dict(self.timeouts),
            "partial_fold_probe": self.partial_fold_probe,
            "host_health": self.host_health,
            "wall_seconds": round(self.wall_seconds, 6),
            "index_checks": self.index_checks,
            "race_audits": self.race_audits,
            "tamper_probe": self.tamper_probe,
            "alerts_fired": self.alerts_fired,
            "clean": self.clean,
        }


def build_trace(config: SoakConfig) -> List[Tuple[str, object]]:
    """The seeded op trace: a deterministic mixed-pressure schedule.

    Ops are ``("put", (path, payload))``, ``("seal", k)`` (seal up to
    ``k`` pending objects fleet-wide), ``("audit", None)`` and
    ``("get", None)`` (spot-read a previously written object).  With
    ``churn`` on, the schedule also mixes in ``("churn", k)`` (delete
    up to ``k`` pending objects — dead data for the cleaner) and
    ``("clean", None)`` (run the LFS cleaner on every member).  The
    trace is a pure function of the seed, so the rpc fleet and the
    serial shadow replay exactly the same pressure.
    """
    rng = random.Random(config.seed)
    trace: List[Tuple[str, object]] = []
    counter = 0
    for _ in range(config.ops):
        roll = rng.random()
        if config.churn:
            if roll < 0.34 or counter == 0:
                payload = bytes(rng.getrandbits(8)
                                for _ in range(rng.randrange(8, 160)))
                trace.append(("put",
                              (f"/soak-{counter:05d}", payload)))
                counter += 1
            elif roll < 0.54:
                trace.append(("seal", rng.randrange(1, 4)))
            elif roll < 0.62:
                trace.append(("churn", rng.randrange(1, 3)))
            elif roll < 0.68:
                trace.append(("clean", None))
            elif roll < 0.82:
                trace.append(("audit", None))
            else:
                trace.append(("get", None))
            continue
        if roll < 0.40 or counter == 0:
            payload = bytes(rng.getrandbits(8)
                            for _ in range(rng.randrange(8, 160)))
            trace.append(("put", (f"/soak-{counter:05d}", payload)))
            counter += 1
        elif roll < 0.65:
            trace.append(("seal", rng.randrange(1, 4)))
        elif roll < 0.80:
            trace.append(("audit", None))
        else:
            trace.append(("get", None))
    return trace


class _TraceRunner:
    """Apply one trace op to one fleet (rpc or shadow), tracking the
    written/pending paths so both twins make identical choices."""

    def __init__(self, fleet: FleetStore, seed: int) -> None:
        self.fleet = fleet
        self.rng = random.Random(seed ^ 0x5EA1)
        self.written: List[str] = []
        self.pending: List[str] = []

    def apply(self, kind: str, arg: object) -> None:
        if kind == "put":
            path, payload = arg
            self.fleet.put(path, payload)
            self.written.append(path)
            self.pending.append(path)
        elif kind == "seal":
            batch = self.pending[:int(arg)]
            if batch:
                self.fleet.seal_many(batch)
                del self.pending[:len(batch)]
        elif kind == "churn":
            # delete young (still-unsealed) objects: dead blocks for
            # the cleaner to reclaim, identical on both twins
            batch = self.pending[:int(arg)]
            for path in batch:
                self.fleet.delete(path)
                self.written.remove(path)
            del self.pending[:len(batch)]
        elif kind == "clean":
            # run the LFS cleaner directly on every member — a
            # client-side mutation the rpc session layer must fence
            # (generation mismatch → automatic re-pin on next ship)
            for member in self.fleet.members:
                if member.fs is not None:
                    run_cleaner(member.fs, max_segments=1)
        elif kind == "audit":
            self.fleet.audit()
        elif kind == "get":
            if self.written:
                path = self.written[self.rng.randrange(
                    len(self.written))]
                self.fleet.get(path)
        else:  # pragma: no cover
            raise ConfigurationError(f"unknown soak op {kind!r}")


def _fingerprints(fleet: FleetStore) -> List[Tuple]:
    return [store_fingerprint(member) for member in fleet.members]


def run_soak(config: SoakConfig = SoakConfig()) -> SoakReport:
    """Run one chaos soak; see the module docstring for the contract.

    Spawns ``config.workers`` loopback worker daemons, replays the
    seeded trace on an rpc fleet (with the configured fault policy)
    and a serial shadow fleet, injects the fault schedule, and checks
    the invariants at every checkpoint.  Workers are always reaped.
    """
    from ..parallel.remote import (RpcConnectionError, RpcExecutor,
                                   close_connection_pools,
                                   host_health_snapshot,
                                   reset_host_health,
                                   spawn_local_worker)

    report = SoakReport()
    trace = build_trace(config)
    faults = {(f.at_op): [] for f in config.resolved_faults()}
    for fault in config.resolved_faults():
        faults[fault.at_op].append(fault)

    reset_host_health()
    workers = [spawn_local_worker() for _ in range(config.workers)]
    addresses = [w.address for w in workers]
    alive = [True] * len(workers)
    t0 = time.perf_counter()
    try:
        executor = RpcExecutor(
            addresses, sessions=config.sessions,
            timeout=config.timeout, retries=config.retries,
            on_failure="raise")
        fleet = FleetStore.create(
            config.members, seed=config.seed, executor=executor,
            total_blocks=config.total_blocks)
        shadow = FleetStore.create(
            config.members, seed=config.seed, executor="serial",
            total_blocks=config.total_blocks)
        # the evidence index rides the live fleet's ops (the shadow
        # stays index-free: the index is maintenance under test, not
        # part of the byte-identity contract)
        index = EvidenceIndex()
        fleet.attach_indexer(index)
        index.register_alert("soak-tamper", "tampered:true")
        live_run = _TraceRunner(fleet, config.seed)
        shadow_run = _TraceRunner(shadow, config.seed)
        probe_armed = config.partial_fold_probe

        def check_index(label: str, *, expect_alerts: int) -> None:
            """Index/percolator invariants: the incrementally
            maintained index must be byte-identical to a rebuild from
            its journal, the journal chain must verify, and the
            standing tamper query must have fired exactly
            ``expect_alerts`` times."""
            ok = True
            try:
                index.verify_journal()
            except Exception as exc:
                report.violations.append(
                    f"{label}: index journal broken: {exc}")
                ok = False
            if index.rebuild().canonical_bytes() \
                    != index.canonical_bytes():
                report.violations.append(
                    f"{label}: incremental index diverged from "
                    f"rebuild()")
                ok = False
            fired = len(index.alerts)
            if fired != expect_alerts:
                report.violations.append(
                    f"{label}: standing tamper query fired {fired} "
                    f"time(s), expected {expect_alerts}")
                ok = False
            report.alerts_fired = fired
            if ok:
                report.index_checks += 1

        def checkpoint(label: str) -> None:
            report.checkpoints += 1
            if _fingerprints(fleet) != _fingerprints(shadow):
                report.violations.append(
                    f"{label}: member fingerprints diverged from the "
                    f"serial shadow")
            if live_run.written:
                idx = report.checkpoints % len(live_run.written)
                path = live_run.written[idx]
                if fleet.get(path) != shadow.get(path):
                    report.violations.append(
                        f"{label}: object {path!r} bytes diverged")
            audited = fleet.audit()
            shadow_audit = shadow.audit()
            if audited.clean and shadow_audit.clean:
                report.audits_clean += 1
            else:
                report.violations.append(
                    f"{label}: fleet audit not clean "
                    f"(errors: {audited.fs_errors[:3]})")
            if _fingerprints(fleet) != _fingerprints(shadow):
                report.violations.append(
                    f"{label}: post-audit fingerprints diverged")
            check_index(label, expect_alerts=0)

        def probe_partial_fold(label: str) -> None:
            """The no-partial-folds invariant, probed directly: a
            fail-fast pass racing the fresh kill must either abort
            with every member fingerprint untouched, or (if the ring
            happened to avoid the dead host) complete wholly."""
            before = _fingerprints(fleet)
            fleet._executor = RpcExecutor(
                addresses, sessions=config.sessions,
                timeout=config.timeout, retries=0, on_failure="raise")
            try:
                fleet.audit()
            except RpcConnectionError:
                if _fingerprints(fleet) != before:
                    report.violations.append(
                        f"{label}: aborted pass folded partial state")
                    report.partial_fold_probe = "violated"
                else:
                    report.partial_fold_probe = "verified"
            else:
                # no member landed on the dead host: the audit
                # completed whole — replay it on the shadow to keep
                # the twins aligned
                shadow.audit()
                report.partial_fold_probe = "fault_not_hit"
            finally:
                fleet._executor = executor

        for op_index, (kind, arg) in enumerate(trace):
            for fault in faults.get(op_index, ()):
                if fault.action == "kill" and alive[fault.worker]:
                    workers[fault.worker].kill()
                    alive[fault.worker] = False
                    report.kills += 1
                    if probe_armed:
                        probe_partial_fold(f"op {op_index}")
                        # the ring may have placed no member on the
                        # dead host (the pass completed whole): stay
                        # armed and probe again on the next kill
                        probe_armed = \
                            report.partial_fold_probe == "fault_not_hit"
                elif fault.action == "restart" and \
                        not alive[fault.worker]:
                    workers[fault.worker] = spawn_local_worker(
                        bind=addresses[fault.worker])
                    alive[fault.worker] = True
                    report.restarts += 1
                elif fault.action == "drop_connections":
                    close_connection_pools()
                    report.connection_drops += 1
            live_run.apply(kind, arg)
            shadow_run.apply(kind, arg)
            report.ops_completed += 1
            report.op_counts[kind] = report.op_counts.get(kind, 0) + 1
            stats = fleet.last_op
            for host, count in stats.retries.items():
                report.retries[host] = \
                    report.retries.get(host, 0) + count
            for host, count in stats.timeouts.items():
                report.timeouts[host] = \
                    report.timeouts.get(host, 0) + count
            if (op_index + 1) % config.checkpoint_every == 0:
                checkpoint(f"checkpoint after op {op_index}")
        checkpoint("final checkpoint")

        # -- phase 2: concurrent audits racing mutating ops ------------
        # (live fleet only — the shadow's byte-identity contract is
        # settled; this phase stresses the footprint locks and the
        # index's concurrent ingest instead)
        if config.race_auditors > 0 and config.race_ops > 0:
            errors: List[str] = []

            def _auditor(slot: int) -> None:
                try:
                    for _ in range(2):
                        audited = fleet.audit()
                        if not audited.clean:
                            errors.append(
                                f"racing auditor {slot}: audit not "
                                f"clean on untampered fleet")
                        report.race_audits += 1
                except Exception as exc:  # noqa: BLE001 - reported
                    errors.append(f"racing auditor {slot}: {exc}")

            auditors = [threading.Thread(target=_auditor, args=(i,))
                        for i in range(config.race_auditors)]
            for thread in auditors:
                thread.start()
            race_rng = random.Random(config.seed ^ 0xACE5)
            race_paths = []
            try:
                for i in range(config.race_ops):
                    path = f"/soak-race-{i:03d}"
                    payload = bytes(race_rng.getrandbits(8)
                                    for _ in range(32))
                    fleet.put(path, payload)
                    race_paths.append(path)
                    if len(race_paths) % 3 == 0:
                        fleet.seal_many(race_paths[-3:])
            except Exception as exc:  # noqa: BLE001 - reported
                errors.append(f"racing mutator: {exc}")
            finally:
                for thread in auditors:
                    thread.join()
            report.violations.extend(errors)
            check_index("race phase", expect_alerts=0)

        # -- phase 3: injected tamper must fire the standing alert -----
        if config.tamper_probe:
            from ..security.attacks import mwb_data

            target = None
            for m_index, member in enumerate(fleet.members):
                for path in sorted(member.receipts):
                    target = (m_index, member, member.receipts[path],
                              path)
                    break
                if target is not None:
                    break
            if target is None:
                report.tamper_probe = "no_sealed_object"
            else:
                m_index, member, receipt, path = target
                before = len(index.alerts)
                mwb_data(member.device, receipt.line_start)
                tampered_audit = fleet.audit()
                new_alerts = index.alerts[before:]
                doc_id = f"obj:{path}"
                if tampered_audit.clean:
                    report.violations.append(
                        "tamper probe: audit stayed clean after "
                        "mwb_data forgery")
                    report.tamper_probe = "violated"
                elif len(new_alerts) != 1 \
                        or new_alerts[0].doc_id != doc_id:
                    report.violations.append(
                        f"tamper probe: expected exactly one alert on "
                        f"{doc_id}, got "
                        f"{[(a.name, a.doc_id) for a in new_alerts]}")
                    report.tamper_probe = "violated"
                else:
                    report.tamper_probe = "fired_exactly"
                check_index("tamper probe",
                            expect_alerts=before + len(new_alerts))
        report.host_health = host_health_snapshot()
    finally:
        report.wall_seconds = time.perf_counter() - t0
        for worker in workers:
            worker.stop()
        close_connection_pools()
        reset_host_health()
    return report


def _trajectory_point(payload: Dict[str, object]) -> Dict[str, object]:
    """The compact per-run datapoint the unbounded series keeps."""
    ops_per_second = payload.get("ops_per_second")
    if ops_per_second is None:  # pre-trajectory payloads: derive it
        wall = payload.get("wall_seconds") or 0.0
        ops_per_second = round(
            payload.get("ops_completed", 0) / wall, 3) if wall else 0.0
    return {
        "ops_per_second": ops_per_second,
        "ops_completed": payload.get("ops_completed", 0),
        "wall_seconds": payload.get("wall_seconds", 0.0),
        "kills": payload.get("kills", 0),
        "restarts": payload.get("restarts", 0),
        "connection_drops": payload.get("connection_drops", 0),
        "failover_retries": sum(
            payload.get("failover_retries", {}).values()),
        "clean": payload.get("clean", False),
    }


def append_trajectory(path: str, payload: Dict[str, object]) -> Dict[str, object]:
    """Append one run to the ``BENCH_soak.json`` trajectory file.

    The file holds ``{"bench": "soak", "trajectory": [...], "runs":
    [...]}`` — the series keeps every run's ops/s-under-faults
    datapoint, ``runs`` the last :data:`MAX_KEPT_RUNS` full payloads.
    A legacy single-run file (one payload at top level) is migrated in
    place as the first datapoint; an unreadable file is restarted
    rather than crashing the soak that just passed.
    """
    document: Dict[str, object] = {"bench": "soak",
                                   "trajectory": [], "runs": []}
    try:
        with open(path, "r") as handle:
            existing = json.load(handle)
        if isinstance(existing, dict) and \
                isinstance(existing.get("trajectory"), list):
            document["trajectory"] = existing["trajectory"]
            runs = existing.get("runs")
            document["runs"] = runs if isinstance(runs, list) else []
        elif isinstance(existing, dict) and "ops_completed" in existing:
            # pre-trajectory format: one run payload at top level
            document["trajectory"] = [_trajectory_point(existing)]
            document["runs"] = [existing]
    except (OSError, ValueError):
        pass
    document["trajectory"].append(_trajectory_point(payload))
    document["runs"] = (document["runs"] + [payload])[-MAX_KEPT_RUNS:]
    document["latest"] = payload
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return document


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads.soak",
        description="trace-driven fleet chaos soak")
    parser.add_argument("--ops", type=int, default=48)
    parser.add_argument("--members", type=int, default=4)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument("--checkpoint-every", type=int, default=12)
    parser.add_argument("--retries", type=int, default=3)
    parser.add_argument("--timeout", type=float, default=30.0)
    parser.add_argument("--sessions", action="store_true", default=None,
                        help="force rpc session mode (default: resolve "
                             "through the policy chain / env)")
    parser.add_argument("--no-churn", dest="churn",
                        action="store_false", default=True,
                        help="disable LFS cleaner churn in the trace")
    parser.add_argument("--race-auditors", type=int, default=2,
                        help="post-trace auditor threads racing "
                             "mutating ops (0 disables the phase)")
    parser.add_argument("--race-ops", type=int, default=8)
    parser.add_argument("--no-tamper-probe", dest="tamper_probe",
                        action="store_false", default=True,
                        help="skip the end-of-run tamper injection")
    parser.add_argument("--json", default="BENCH_soak.json",
                        help="result file path ('-' to skip)")
    args = parser.parse_args(argv)
    config = SoakConfig(
        members=args.members, workers=args.workers, ops=args.ops,
        seed=args.seed, checkpoint_every=args.checkpoint_every,
        retries=args.retries, timeout=args.timeout,
        sessions=args.sessions, churn=args.churn,
        race_auditors=args.race_auditors, race_ops=args.race_ops,
        tamper_probe=args.tamper_probe)
    report = run_soak(config)
    payload = report.to_json()
    payload["config"] = {
        "members": config.members, "workers": config.workers,
        "ops": config.ops, "seed": config.seed,
        "checkpoint_every": config.checkpoint_every,
        "retries": config.retries, "timeout": config.timeout,
        "sessions": bool(config.sessions),
        "churn": config.churn,
        "race_auditors": config.race_auditors,
        "race_ops": config.race_ops,
        "tamper_probe": config.tamper_probe,
    }
    runs_recorded = 1
    if args.json != "-":
        document = append_trajectory(args.json, payload)
        runs_recorded = len(document["trajectory"])
    status = "CLEAN" if report.clean else "VIOLATIONS"
    print(f"soak {status}: {report.ops_completed} ops, "
          f"{report.kills} kills, {report.restarts} restarts, "
          f"{report.connection_drops} drops, "
          f"{report.checkpoints} checkpoints "
          f"({report.audits_clean} clean audits), "
          f"failover retries {sum(report.retries.values())}, "
          f"partial-fold probe: {report.partial_fold_probe}, "
          f"index checks {report.index_checks}, "
          f"race audits {report.race_audits}, "
          f"tamper probe: {report.tamper_probe} "
          f"({report.alerts_fired} alert(s)), "
          f"{report.ops_per_second:.2f} ops/s under faults, "
          f"{report.wall_seconds:.1f}s "
          f"(trajectory: {runs_recorded} run(s))")
    for violation in report.violations:
        print(f"  VIOLATION: {violation}")
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
