"""Synthetic file workload generators.

Deterministic (seeded) generators for the aging and lifetime
benchmarks: file sizes follow a lognormal distribution (the classic
file-system finding), operations are drawn from a configurable
create/rewrite/delete/heat mix, and every generated operation is a
plain data object so traces can be recorded and replayed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np


class OpKind(enum.Enum):
    """Workload operation kinds."""

    CREATE = "create"
    REWRITE = "rewrite"
    APPEND = "append"
    DELETE = "delete"
    HEAT = "heat"
    READ = "read"


@dataclass(frozen=True)
class FileOp:
    """One workload operation.

    Attributes:
        kind: what to do.
        path: target file path.
        size: payload size for create/rewrite/append (bytes).
        seed: per-op content seed (reproducible payloads).
    """

    kind: OpKind
    path: str
    size: int = 0
    seed: int = 0


def payload_for(op: FileOp) -> bytes:
    """Deterministic payload bytes for a create/rewrite/append op."""
    rng = np.random.default_rng(op.seed)
    return rng.integers(0, 256, size=op.size, dtype=np.uint8).tobytes()


@dataclass
class SyntheticWorkload:
    """Seeded random workload over a flat namespace.

    Attributes:
        n_files: initial file population.
        n_ops: operations to generate after population.
        mean_size: lognormal mean file size [bytes].
        sigma: lognormal sigma (spread).
        p_rewrite / p_append / p_delete / p_heat / p_read: op mix for
            the post-population phase (remainder goes to CREATE).
        seed: master RNG seed.
    """

    n_files: int = 32
    n_ops: int = 200
    mean_size: float = 4096.0
    sigma: float = 0.8
    p_rewrite: float = 0.45
    p_append: float = 0.15
    p_delete: float = 0.05
    p_heat: float = 0.05
    p_read: float = 0.20
    seed: int = 1

    def _size(self, rng: np.random.Generator) -> int:
        mu = np.log(self.mean_size) - self.sigma ** 2 / 2.0
        return max(int(rng.lognormal(mu, self.sigma)), 16)

    def generate(self) -> Iterator[FileOp]:
        """Yield the operation stream."""
        rng = np.random.default_rng(self.seed)
        live: List[str] = []
        heated: set = set()
        counter = 0
        for i in range(self.n_files):
            path = f"/f{counter:05d}"
            counter += 1
            live.append(path)
            yield FileOp(OpKind.CREATE, path, self._size(rng),
                         seed=int(rng.integers(1 << 31)))
        for _ in range(self.n_ops):
            roll = rng.random()
            mutable = [p for p in live if p not in heated]
            if roll < self.p_rewrite and mutable:
                path = mutable[int(rng.integers(len(mutable)))]
                yield FileOp(OpKind.REWRITE, path, self._size(rng),
                             seed=int(rng.integers(1 << 31)))
            elif roll < self.p_rewrite + self.p_append and mutable:
                path = mutable[int(rng.integers(len(mutable)))]
                yield FileOp(OpKind.APPEND, path, self._size(rng) // 4 + 16,
                             seed=int(rng.integers(1 << 31)))
            elif roll < self.p_rewrite + self.p_append + self.p_delete and mutable:
                path = mutable[int(rng.integers(len(mutable)))]
                live.remove(path)
                yield FileOp(OpKind.DELETE, path)
            elif roll < self.p_rewrite + self.p_append + self.p_delete \
                    + self.p_heat and mutable:
                path = mutable[int(rng.integers(len(mutable)))]
                heated.add(path)
                yield FileOp(OpKind.HEAT, path)
            elif roll < self.p_rewrite + self.p_append + self.p_delete \
                    + self.p_heat + self.p_read and live:
                path = live[int(rng.integers(len(live)))]
                yield FileOp(OpKind.READ, path)
            else:
                path = f"/f{counter:05d}"
                counter += 1
                live.append(path)
                yield FileOp(OpKind.CREATE, path, self._size(rng),
                             seed=int(rng.integers(1 << 31)))


def apply_op(fs, op: FileOp) -> Optional[bytes]:
    """Apply one op to a SeroFS; returns read data for READ ops.

    Unavailable targets (already deleted, heated, out of space) are
    surfaced to the caller — workload drivers decide what to tolerate.
    """
    from .. import errors

    if op.kind is OpKind.CREATE:
        fs.create(op.path, payload_for(op))
    elif op.kind is OpKind.REWRITE:
        fs.write(op.path, payload_for(op))
    elif op.kind is OpKind.APPEND:
        fs.append(op.path, payload_for(op))
    elif op.kind is OpKind.DELETE:
        fs.unlink(op.path)
    elif op.kind is OpKind.HEAT:
        fs.heat_file(op.path)
    elif op.kind is OpKind.READ:
        return fs.read(op.path)
    else:  # pragma: no cover - enum is closed
        raise errors.ReproError(f"unknown op {op.kind}")
    return None


def run_workload(fs, workload: SyntheticWorkload,
                 stop_on_nospace: bool = True) -> dict:
    """Drive a workload against ``fs``; returns operation counters."""
    from ..errors import NoSpaceError

    counts = {kind.value: 0 for kind in OpKind}
    counts["nospace"] = 0
    for op in workload.generate():
        try:
            apply_op(fs, op)
            counts[op.kind.value] += 1
        except NoSpaceError:
            counts["nospace"] += 1
            if stop_on_nospace:
                break
    return counts
