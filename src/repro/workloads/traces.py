"""Operation traces: record, serialise and replay workloads.

The paper's evaluation plan (Section 9) calls for a simulator whose
results a later time-accurate emulator can validate; reproducible
traces are the contract between the two.  A trace is a list of
:class:`~repro.workloads.synthetic.FileOp` rows with a text
serialisation, so identical operation streams can be replayed against
different device/FS configurations (the benchmark sweeps do this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List

from .synthetic import FileOp, OpKind, apply_op


@dataclass
class Trace:
    """A recorded operation stream."""

    ops: List[FileOp] = field(default_factory=list)

    def append(self, op: FileOp) -> None:
        """Record one operation."""
        self.ops.append(op)

    def extend(self, ops: Iterable[FileOp]) -> None:
        """Record many operations."""
        self.ops.extend(ops)

    def dumps(self) -> str:
        """Serialise to one line per op: ``kind path size seed``."""
        lines = [f"{op.kind.value} {op.path} {op.size} {op.seed}"
                 for op in self.ops]
        return "\n".join(lines) + ("\n" if lines else "")

    @classmethod
    def loads(cls, text: str) -> "Trace":
        """Parse the :meth:`dumps` format."""
        ops: List[FileOp] = []
        for line_no, line in enumerate(text.splitlines(), 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"trace line {line_no}: expected 4 fields")
            kind, path, size, seed = parts
            ops.append(FileOp(OpKind(kind), path, int(size), int(seed)))
        return cls(ops=ops)

    def replay(self, fs, ignore_errors: bool = False) -> dict:
        """Apply the trace to a file system; returns op counters."""
        from ..errors import ReproError

        counts = {kind.value: 0 for kind in OpKind}
        counts["errors"] = 0
        for op in self.ops:
            try:
                apply_op(fs, op)
                counts[op.kind.value] += 1
            except ReproError:
                counts["errors"] += 1
                if not ignore_errors:
                    raise
        return counts

    def __len__(self) -> int:
        return len(self.ops)


def record_workload(workload) -> Trace:
    """Materialise a generator-based workload into a trace."""
    trace = Trace()
    trace.extend(workload.generate())
    return trace
