"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.device.sero import SERODevice
from repro.fs.lfs import FSConfig, SeroFS


@pytest.fixture
def small_device() -> SERODevice:
    """A 64-block device — enough for a couple of heated lines."""
    return SERODevice.create(64)


@pytest.fixture
def device() -> SERODevice:
    """A 256-block device for FS-level tests."""
    return SERODevice.create(256)


@pytest.fixture
def fs(device: SERODevice) -> SeroFS:
    """A freshly formatted file system on :func:`device`."""
    return SeroFS.format(device)


@pytest.fixture
def big_fs() -> SeroFS:
    """A roomier FS (1024 blocks) for aging/cleaner tests."""
    return SeroFS.format(SERODevice.create(1024))


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running simulation tests")
