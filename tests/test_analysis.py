"""Report-formatting and experiment-registry tests."""

from repro.analysis.experiments import EXPERIMENTS
from repro.analysis.report import format_series, format_table


def test_table_alignment():
    text = format_table(["name", "value"], [["a", 1], ["longer", 22.5]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert all(len(line) == len(lines[0]) or "-" in line for line in lines)


def test_table_title():
    text = format_table(["x"], [[1]], title="Table 1")
    assert text.startswith("Table 1")


def test_series_bars_scale():
    text = format_series("T", "K", [(100, 10.0), (200, 5.0)])
    lines = text.splitlines()
    assert lines[1].count("#") == 2 * lines[2].count("#")


def test_series_handles_zeros():
    text = format_series("x", "y", [(1, 0.0), (2, 0.0)])
    assert "#" not in text


def test_float_formatting():
    text = format_table(["v"], [[1.23456789e-9], [123456.789], [1.5]])
    assert "e-09" in text or "1.235e-09" in text


def test_registry_covers_all_paper_artifacts():
    ids = set(EXPERIMENTS)
    assert {"fig1", "fig2", "fig3", "fig7", "fig8", "fig9",
            "sec3-erb", "sec3-heat", "sec4-lfs", "sec4-venti",
            "sec4-fossil", "sec5", "sec8-life", "sec8-wom"} <= ids


def test_registry_entries_complete():
    for exp in EXPERIMENTS.values():
        assert exp.bench.startswith("benchmarks/")
        assert exp.expected_shape
        assert exp.artifact
