"""Execution-policy tests: resolution precedence, nested contexts,
lazy environment reads, sha256 backend routing, deprecation shims."""

import warnings

import pytest

import repro
from repro.api import policy as pol
from repro.api.policy import (
    EngineSpec,
    ExecutionPolicy,
    available_engines,
    describe_policy,
    engine,
    get_engine,
    register_engine,
    resolve_engine,
    resolve_sha256_backend,
    resolve_vectorized,
    set_policy,
    unregister_engine,
)
from repro.crypto import crc, manchester, sha256


@pytest.fixture(autouse=True)
def _clean_policy_state(monkeypatch):
    """Every test starts from the default resolution state (no env, no
    installed policy, no module pins leaked by other test files)."""
    monkeypatch.delenv(pol.ENGINE_ENV_VAR, raising=False)
    monkeypatch.delenv(pol.SHA256_ENV_VAR, raising=False)
    set_policy(None)
    monkeypatch.setattr(crc, "USE_VECTORIZED", None)
    monkeypatch.setattr(manchester, "USE_VECTORIZED", None)
    monkeypatch.setattr(sha256, "_backend", None)
    yield
    set_policy(None)


# -- resolution precedence: arg > context > policy > env > default ----------


def test_default_is_vectorized():
    assert resolve_vectorized() is True
    assert resolve_engine().name == "vectorized"


def test_env_layer_is_read_lazily(monkeypatch):
    # flipping the variable *after import* must take effect everywhere
    assert resolve_vectorized() is True
    monkeypatch.setenv(pol.ENGINE_ENV_VAR, "0")
    assert resolve_vectorized() is False
    monkeypatch.setenv(pol.ENGINE_ENV_VAR, "scalar")
    assert resolve_engine().name == "scalar"
    monkeypatch.setenv(pol.ENGINE_ENV_VAR, "vectorized")
    assert resolve_vectorized() is True


def test_policy_beats_env(monkeypatch):
    monkeypatch.setenv(pol.ENGINE_ENV_VAR, "0")
    set_policy(ExecutionPolicy(engine="vectorized"))
    assert resolve_vectorized() is True
    set_policy(None)
    assert resolve_vectorized() is False


def test_context_beats_policy(monkeypatch):
    set_policy(ExecutionPolicy(engine="vectorized"))
    with engine("scalar"):
        assert resolve_vectorized() is False
    assert resolve_vectorized() is True


def test_explicit_arg_beats_everything(monkeypatch):
    monkeypatch.setenv(pol.ENGINE_ENV_VAR, "0")
    set_policy(ExecutionPolicy(engine="scalar"))
    with engine("scalar"):
        assert resolve_vectorized(True) is True
        assert resolve_vectorized("vectorized") is True
        assert resolve_engine(False).name == "scalar"


def test_nested_contexts_innermost_wins():
    with engine("scalar"):
        assert resolve_engine().name == "scalar"
        with engine("vectorized"):
            assert resolve_engine().name == "vectorized"
            with engine("scalar"):
                assert resolve_vectorized() is False
            assert resolve_vectorized() is True
        assert resolve_engine().name == "scalar"
    assert resolve_engine().name == "vectorized"


def test_context_with_no_engine_defers():
    with engine(sha256="pure"):  # pins only the hash backend
        assert resolve_vectorized() is True
        with engine("scalar"):
            assert resolve_vectorized() is False
            assert resolve_sha256_backend() == "pure"


def test_unknown_engine_rejected():
    with pytest.raises(ValueError):
        resolve_engine("warp-drive")
    with pytest.raises(ValueError):
        ExecutionPolicy(engine="warp-drive")


def test_policy_use_context():
    custom = ExecutionPolicy(engine="scalar", sha256_backend="pure")
    with custom.use():
        assert resolve_vectorized() is False
        assert resolve_sha256_backend() == "pure"
    assert resolve_vectorized() is True
    assert resolve_sha256_backend() == "hashlib"


# -- engine registry --------------------------------------------------------


def test_builtin_engines_registered():
    assert {"vectorized", "scalar"} <= set(available_engines())
    assert get_engine("vectorized").vectorized is True
    assert get_engine("scalar").vectorized is False


def test_register_custom_engine_selectable():
    register_engine(EngineSpec("sharded_test", True,
                               "pretend fleet backend"))
    try:
        with engine("sharded_test"):
            assert resolve_engine().name == "sharded_test"
            assert resolve_vectorized() is True
        set_policy(ExecutionPolicy(engine="sharded_test"))
        assert resolve_engine().name == "sharded_test"
    finally:
        set_policy(None)
        unregister_engine("sharded_test")
    with pytest.raises(ValueError):
        get_engine("sharded_test")


def test_register_duplicate_engine_rejected():
    with pytest.raises(ValueError):
        register_engine(EngineSpec("scalar", False))
    with pytest.raises(ValueError):
        unregister_engine("vectorized")


def test_describe_policy_reports_source(monkeypatch):
    snap = describe_policy()
    assert snap["engine"] == "vectorized"
    assert snap["engine_source"] == "default"
    monkeypatch.setenv(pol.ENGINE_ENV_VAR, "off")
    assert describe_policy()["engine_source"] == "env"
    set_policy(ExecutionPolicy(engine="vectorized"))
    assert describe_policy()["engine_source"] == "policy"
    with engine("scalar"):
        snap = describe_policy()
        assert snap["engine_source"] == "context"
        assert snap["vectorized"] is False


# -- the lazy switch actually reaches the leaf modules ----------------------


def test_crc_and_manchester_flip_after_import(monkeypatch):
    data = b"the quick brown fox" * 11
    vec = crc.crc32(data)
    monkeypatch.setenv(pol.ENGINE_ENV_VAR, "0")
    # same answer, scalar path (observable through the module pin trace)
    assert crc.crc32(data) == vec
    assert crc._use_vectorized() is False
    assert manchester._use_vectorized() is False
    monkeypatch.delenv(pol.ENGINE_ENV_VAR)
    assert crc._use_vectorized() is True


def test_module_pin_beats_policy():
    try:
        crc.USE_VECTORIZED = False
        with engine("vectorized"):
            assert crc._use_vectorized() is False
    finally:
        crc.USE_VECTORIZED = None
    with engine("scalar"):
        assert crc._use_vectorized() is False


def test_device_config_resolves_policy_at_construction():
    from repro.device.sero import DeviceConfig

    with engine("scalar"):
        assert DeviceConfig().span_engine is False
    assert DeviceConfig().span_engine is True


def test_scan_for_defects_honours_context():
    from repro.device.sero import SERODevice
    from repro.medium.defects import scan_for_defects

    device = SERODevice.create(8)
    with engine("scalar"):
        scalar_report = scan_for_defects(device.medium)
    vec_report = scan_for_defects(device.medium)
    assert scalar_report == vec_report


# -- sha256 backend routing --------------------------------------------------


def test_sha256_backend_resolves_through_policy(monkeypatch):
    assert sha256.get_backend() == "hashlib"
    with engine(sha256="pure"):
        assert sha256.get_backend() == "pure"
    set_policy(ExecutionPolicy(sha256_backend="pure"))
    assert sha256.get_backend() == "pure"
    set_policy(None)
    monkeypatch.setenv(pol.SHA256_ENV_VAR, "pure")
    assert sha256.get_backend() == "pure"


def test_sha256_pin_beats_policy_and_digests_agree():
    payload = (b"tamper-evident", b" storage")
    baseline = sha256.sha256_digest(*payload)
    try:
        sha256.set_backend("pure")
        with engine(sha256="hashlib"):
            assert sha256.get_backend() == "pure"
        assert sha256.sha256_digest(*payload) == baseline
    finally:
        sha256.set_backend(None)  # unpin
    with engine(sha256="pure"):
        assert sha256.sha256_digest(*payload) == baseline


def test_sha256_invalid_backends_rejected():
    with pytest.raises(ValueError):
        sha256.set_backend("md5")
    with pytest.raises(ValueError):
        ExecutionPolicy(sha256_backend="md5")
    with pytest.raises(ValueError):
        resolve_sha256_backend("md5")


def test_line_hash_identical_across_backends():
    from repro.crypto.hashutil import line_hash

    addresses = [3, 4, 5]
    blocks = [bytes([i]) * 512 for i in range(3)]
    fast = line_hash(addresses, blocks)
    with engine(sha256="pure"):
        assert line_hash(addresses, blocks) == fast


# -- deprecation shims --------------------------------------------------------


def test_span_engine_default_shim_warns_and_matches(monkeypatch):
    from repro.vectorize import span_engine_default

    with pytest.warns(DeprecationWarning):
        assert span_engine_default() is True
    monkeypatch.setenv(pol.ENGINE_ENV_VAR, "0")
    with pytest.warns(DeprecationWarning):
        assert span_engine_default() is False
    with engine("vectorized"), pytest.warns(DeprecationWarning):
        assert span_engine_default() is True


def test_fleet_scheduler_raw_device_shim_warns():
    from repro.device.sero import SERODevice
    from repro.workloads.fleet import FleetScheduler

    devices = [SERODevice.create(16) for _ in range(2)]
    with pytest.warns(DeprecationWarning):
        fleet = FleetScheduler(devices)
    assert fleet.devices == devices
    report = fleet.format_fleet()
    assert report.device_count == 2
    assert report.blocks_processed == 32


def test_fresh_fs_shim_warns_and_matches_store():
    from repro.security.analysis import TARGET, _fresh_fs, _fresh_store

    with pytest.warns(DeprecationWarning):
        device, fs, line = _fresh_fs(total_blocks=256)
    store = _fresh_store(total_blocks=256)
    assert line == store.receipts[TARGET].line_start
    assert fs.read(TARGET) == store.get(TARGET)
    assert device.verify_line(line).status.value == "intact"


def test_top_level_engine_export():
    with repro.engine("scalar"):
        assert repro.api.resolve_vectorized() is False


# -- gateway / fleet-secret knobs (ISSUE 8) ---------------------------------


def test_fleet_secret_resolution_layers(monkeypatch):
    monkeypatch.delenv(pol.FLEET_SECRET_ENV_VAR, raising=False)
    assert pol.resolve_fleet_secret() == (None, "default")

    monkeypatch.setenv(pol.FLEET_SECRET_ENV_VAR, "env-key")
    assert pol.resolve_fleet_secret() == ("env-key", "env")

    set_policy(ExecutionPolicy(fleet_secret="policy-key"))
    assert pol.resolve_fleet_secret() == ("policy-key", "policy")

    with engine(fleet_secret="context-key"):
        assert pol.resolve_fleet_secret() == ("context-key", "context")

    assert pol.resolve_fleet_secret("arg-key") == ("arg-key", "explicit")


def test_fleet_secret_validated_and_masked_in_describe(monkeypatch):
    with pytest.raises(ValueError):
        ExecutionPolicy(fleet_secret="")
    with pytest.raises(TypeError):
        ExecutionPolicy(fleet_secret=123)
    set_policy(ExecutionPolicy(fleet_secret="s3cret-material"))
    described = describe_policy()
    assert described["fleet_secret_set"] is True
    assert described["fleet_secret_source"] == "policy"
    assert "s3cret-material" not in repr(described)
    set_policy(None)
    assert describe_policy()["fleet_secret_set"] is False


def test_gateway_bind_resolution_layers(monkeypatch):
    monkeypatch.delenv(pol.GATEWAY_BIND_ENV_VAR, raising=False)
    assert pol.resolve_gateway_bind() == \
        (pol.DEFAULT_GATEWAY_BIND, "default")

    monkeypatch.setenv(pol.GATEWAY_BIND_ENV_VAR, "0.0.0.0:9100")
    assert pol.resolve_gateway_bind() == ("0.0.0.0:9100", "env")

    set_policy(ExecutionPolicy(gateway_bind="127.0.0.1:9200"))
    assert pol.resolve_gateway_bind() == ("127.0.0.1:9200", "policy")

    with engine(gateway_bind="127.0.0.1:9300"):
        assert pol.resolve_gateway_bind() == \
            ("127.0.0.1:9300", "context")

    assert pol.resolve_gateway_bind("h:9400") == ("h:9400", "explicit")
    with pytest.raises(Exception):
        ExecutionPolicy(gateway_bind="nonsense")


def test_gateway_token_file_resolution_layers(monkeypatch):
    monkeypatch.delenv(pol.GATEWAY_TOKEN_FILE_ENV_VAR, raising=False)
    assert pol.resolve_gateway_token_file() == (None, "default")

    monkeypatch.setenv(pol.GATEWAY_TOKEN_FILE_ENV_VAR, "/etc/tk")
    assert pol.resolve_gateway_token_file() == ("/etc/tk", "env")

    set_policy(ExecutionPolicy(gateway_token_file="/srv/tk"))
    assert pol.resolve_gateway_token_file() == ("/srv/tk", "policy")

    with engine(gateway_token_file="/ctx/tk"):
        assert pol.resolve_gateway_token_file() == ("/ctx/tk", "context")

    assert pol.resolve_gateway_token_file("/x/tk") == \
        ("/x/tk", "explicit")
