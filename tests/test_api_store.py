"""TamperEvidentStore façade tests: typed request/response objects,
equivalence with the pre-façade entry points, batch grain, arenas."""

import pytest

from repro.api import engine
from repro.api.store import (
    AuditReport,
    ObjectInfo,
    SealReceipt,
    StoreConfig,
    TamperEvidentStore,
    VerifyReport,
)
from repro.device.sero import DeviceConfig, SERODevice, VerifyStatus
from repro.errors import (
    ConfigurationError,
    FileExistsError_,
    ImmutableFileError,
    IntegrityError,
)
from repro.fs.lfs import SeroFS


@pytest.fixture
def store() -> TamperEvidentStore:
    return TamperEvidentStore.create(total_blocks=256)


# -- object grain -------------------------------------------------------------


def test_put_get_roundtrip(store):
    info = store.put("/a.txt", b"hello world")
    assert isinstance(info, ObjectInfo)
    assert info.path == "/a.txt" and info.size == 11
    assert not info.sealed and info.line_start is None
    assert store.get("/a.txt") == b"hello world"


def test_put_refuses_overwrite_by_default(store):
    store.put("/a", b"one")
    with pytest.raises(FileExistsError_):
        store.put("/a", b"two")
    info = store.put("/a", b"two", overwrite=True)
    assert info.size == 3
    assert store.get("/a") == b"two"


def test_delete_and_list(store):
    store.put("/x", b"1")
    store.put("/y", b"2")
    assert store.list("/") == ["x", "y"]
    store.delete("/x")
    assert store.list("/") == ["y"]


# -- sealing ------------------------------------------------------------------


def test_seal_returns_receipt_and_freezes(store):
    store.put("/ledger", b"entry " * 100)
    receipt = store.seal("/ledger", timestamp=42)
    assert isinstance(receipt, SealReceipt)
    assert receipt.timestamp == 42
    assert len(receipt.line_hash) == 32
    assert store.info("/ledger").sealed
    assert store.info("/ledger").line_start == receipt.line_start
    with pytest.raises(ImmutableFileError):
        store.put("/ledger", b"rewrite", overwrite=True)
    with pytest.raises(ImmutableFileError):
        store.delete("/ledger")
    # sealed data still reads at magnetic speed
    assert store.get("/ledger") == b"entry " * 100


def test_seal_many_batch(store):
    paths = []
    for i in range(4):
        path = f"/doc-{i}"
        store.put(path, bytes([i]) * 700)
        paths.append(path)
    receipts = store.seal_many(paths, timestamp=7)
    assert [r.path for r in receipts] == paths
    starts = {r.line_start for r in receipts}
    assert len(starts) == 4
    assert set(store.receipts) == set(paths)
    report = store.audit()
    assert report.lines_verified == 4 and report.clean


def test_put_sealed_idiom(store):
    receipt = store.put_sealed("/evidence.bin", b"x" * 600, timestamp=3)
    assert store.info("/evidence.bin").sealed
    assert store.verify("/evidence.bin").intact
    assert receipt.path == "/evidence.bin"


def test_facade_matches_legacy_entry_points():
    """The shim guarantee: same device state through either surface."""
    data = b"record " * 200
    store = TamperEvidentStore.create(total_blocks=256)
    store.put("/f", data)
    receipt = store.seal("/f", timestamp=9)

    legacy_device = SERODevice.create(256)
    legacy_device.format()
    legacy_fs = SeroFS.format(legacy_device)
    legacy_fs.create("/f", data)
    legacy_record = legacy_fs.heat_file("/f", timestamp=9)

    assert receipt.line_start == legacy_record.start
    assert receipt.n_blocks == legacy_record.n_blocks
    assert receipt.line_hash == legacy_record.line_hash
    assert legacy_fs.verify_file("/f").status is VerifyStatus.INTACT
    assert store.verify("/f").status is VerifyStatus.INTACT


# -- verification and audit ----------------------------------------------------


def test_verify_reports_tampering(store):
    from repro.security import attacks

    store.put("/t", b"target " * 120)
    receipt = store.seal("/t")
    assert store.verify("/t").intact
    attacks.mwb_data(store.device, receipt.line_start)
    report = store.verify("/t")
    assert isinstance(report, VerifyReport)
    assert report.status is VerifyStatus.HASH_MISMATCH
    assert report.tamper_evident and not report.intact


def test_audit_labels_and_counts(store):
    store.put("/a", b"a" * 600)
    store.put("/b", b"b" * 600)
    store.seal_many(["/a", "/b"])
    report = store.audit(deep=True)
    assert isinstance(report, AuditReport)
    assert report.deep
    assert len(report) == 2
    assert sorted(r.label for r in report) == ["/a", "/b"]
    assert report.intact_count == 2
    assert report.tampered == []
    assert report.fs_errors == []
    assert report.clean
    assert report.device_seconds > 0


def test_audit_uses_batched_engine_by_default(store, monkeypatch):
    """The audit sweep must go through verify_lines (the bulk path),
    not a per-line verify_line loop."""
    store.put("/a", b"a" * 600)
    store.put("/b", b"b" * 600)
    store.seal_many(["/a", "/b"])
    calls = {"lines": 0, "single": 0}
    real_many = type(store.device).verify_lines

    def spy_many(self, starts):
        calls["lines"] += 1
        return real_many(self, starts)

    monkeypatch.setattr(type(store.device), "verify_lines", spy_many)
    store.audit()
    assert calls["lines"] >= 1


def test_deep_audit_surfaces_fs_errors(store):
    from repro.security import attacks

    store.put("/t", b"x" * 600)
    store.seal("/t")
    attacks.clear_directory(store.fs)
    report = store.audit(deep=True)
    # tree walk now misses the sealed file -> at least a warning/error
    assert report.fs_warnings or report.fs_errors


# -- device-grain mode ----------------------------------------------------------


def test_attach_bare_device_is_device_grain_only():
    device = SERODevice.create(64)
    store = TamperEvidentStore.attach(device)
    scan = store.format_device()
    assert scan.blocks == 64 and scan.bad_blocks == 0
    with pytest.raises(ConfigurationError):
        store.put("/nope", b"")
    with pytest.raises(ConfigurationError):
        store.archive("nope", b"")
    with pytest.raises(ConfigurationError):
        store.seal_log()
    device.write_block(1, b"\x07" * 512)
    device.heat_line(0, 2)
    report = store.audit()
    assert report.lines_verified == 1 and report.clean
    assert store.verify_line(0).intact


def test_mount_reopens_filesystem():
    store = TamperEvidentStore.create(total_blocks=256)
    store.put("/persist", b"payload " * 64)
    store.seal("/persist")
    store.fs.checkpoint()
    reopened = TamperEvidentStore.mount(store.device)
    assert reopened.get("/persist") == b"payload " * 64
    assert reopened.audit().clean


# -- per-store engine pin ---------------------------------------------------------


def test_store_engine_pin_and_equivalence():
    scalar = TamperEvidentStore.create(total_blocks=64, engine="scalar")
    vec = TamperEvidentStore.create(total_blocks=64, engine="vectorized")
    assert scalar.engine == "scalar" and not scalar.device.config.span_engine
    assert vec.engine == "vectorized" and vec.device.config.span_engine
    for s in (scalar, vec):
        s.put("/o", b"z" * 600)
        s.seal("/o", timestamp=5)
    assert scalar.receipts["/o"].line_hash == vec.receipts["/o"].line_hash
    assert scalar.audit().clean and vec.audit().clean


def test_create_under_scalar_context_pins_device():
    with engine("scalar"):
        store = TamperEvidentStore.create(total_blocks=64)
    assert store.engine == "scalar"


# -- archive arena + fossil + instruction log --------------------------------------


def test_archive_roundtrip_and_fossil_catalogue():
    store = TamperEvidentStore.create(total_blocks=128,
                                      archive_blocks=64, fossil_blocks=32)
    payload = b"end of day " * 300
    receipt = store.archive("day-1", payload, timestamp=11)
    assert receipt.bytes_archived == len(payload)
    assert receipt.arena_blocks_used > 0
    assert store.retrieve("day-1") == payload
    assert store.archives == {"day-1": receipt.root_score}
    assert store.fossil.contains(receipt.root_score)
    with pytest.raises(IntegrityError):
        store.retrieve("day-2")
    # seal receipts are fossilised too
    store.put("/doc", b"d" * 600)
    sealed = store.seal("/doc")
    assert store.fossil.contains(sealed.line_hash)
    # the audit covers the archive device's sealed lines as well
    labels = [r.label for r in store.audit()]
    assert any(label and label.startswith("archive:") for label in labels)


def test_fossil_requires_even_archive_arena():
    with pytest.raises(ConfigurationError):
        StoreConfig(archive_blocks=3, fossil_blocks=8)


def test_instruction_log_records_and_seals():
    store = TamperEvidentStore.create(total_blocks=256, audit_log=True,
                                      audit_rotate_bytes=1 << 16)
    store.put("/a", b"1")
    store.put("/b", b"2" * 600)
    store.seal("/b")
    store.delete("/a")
    ops = [rec.split()[0] for _tick, rec in
           ((t, r.decode()) for t, r in store.history())]
    assert ops == ["put", "put", "seal", "delete"]
    sealed_chunk = store.seal_log()
    assert sealed_chunk is not None
    assert store.audit_log.is_history_intact()


def test_export_evidence_bag():
    store = TamperEvidentStore.create(total_blocks=512)
    export = store.export_evidence("case-7", {
        "a.log": b"evidence a " * 30,
        "b.log": b"evidence b " * 30,
    }, timestamp=99)
    assert export.intact
    assert {i.name for i in export.items} == {"a.log", "b.log"}
    assert export.manifest.name == "MANIFEST"
    assert export.directory == "/evidence/case-7"
    assert len(export.reports) == 3  # two exhibits + manifest
    assert store.get("/evidence/case-7/a.log") == b"evidence a " * 30
    # a second case shares the evidence root
    export2 = store.export_evidence("case-8", {"c.log": b"x" * 40})
    assert export2.intact


# -- fsck/deep_scan accept the façade ----------------------------------------------


def test_fsck_and_deep_scan_accept_store(store):
    from repro.fs.fsck import deep_scan, fsck

    store.put("/f", b"f" * 600)
    store.seal("/f")
    report = fsck(store)
    assert report.clean
    scan = deep_scan(store)
    assert len(scan.recovered) == 1
    assert scan.recovered[0].name_hint == "f"
    with pytest.raises(TypeError):
        fsck(42)
    with pytest.raises(TypeError):
        deep_scan("nope")


def test_describe_and_capacity(store):
    store.put("/f", b"f" * 600)
    store.seal("/f")
    desc = store.describe()
    assert desc["engine"] in ("vectorized", "scalar")
    assert desc["filesystem"] and desc["sealed_lines"] == 1
    cap = store.capacity()
    assert cap["total_blocks"] == 256
    assert cap["heated_blocks"] > 0


# -- fleet on the façade -------------------------------------------------------------


def test_fleet_scheduler_accepts_stores():
    from repro.workloads.fleet import FleetScheduler

    stores = [TamperEvidentStore.create(total_blocks=64, format_scan=False)
              for _ in range(2)]
    for i, s in enumerate(stores):
        s.put("/x", bytes([i]) * 600)
        s.seal("/x")
    fleet = FleetScheduler(stores)
    report = fleet.audit_fleet()
    assert report.device_count == 2
    assert report.lines_verified == 2
    assert report.intact_lines == 2
