"""API-surface snapshot: ``repro.api.__all__`` is a frozen contract.

If this test fails you changed the v1 public surface.  That is allowed
— but only deliberately: update ``EXPECTED_API`` (and ``API.md``) in
the same change, and call out the addition/removal in the PR.
"""

import repro
import repro.api as api

#: The frozen surface.  Keep sorted.
EXPECTED_API = sorted([
    # execution policy
    "ENGINE_ENV_VAR",
    "EngineSpec",
    "ExecutionPolicy",
    "SHA256_BACKENDS",
    "SHA256_ENV_VAR",
    "available_engines",
    "describe_policy",
    "engine",
    "get_engine",
    "get_policy",
    "register_engine",
    "resolve_engine",
    "resolve_sha256_backend",
    "resolve_vectorized",
    "set_policy",
    "unregister_engine",
    # fleet executors (PR 4; remote hosts PR 5; sessions PR 6;
    # fault tolerance PR 7; signed frames PR 8)
    "DEFAULT_EXECUTOR",
    "EXECUTOR_ENV_VAR",
    "ExecutorSpec",
    "FLEET_HOSTS_ENV_VAR",
    "FLEET_ON_FAILURE_ENV_VAR",
    "FLEET_ON_FAILURE_MODES",
    "FLEET_RETRIES_ENV_VAR",
    "FLEET_SECRET_ENV_VAR",
    "FLEET_SESSIONS_ENV_VAR",
    "FLEET_TIMEOUT_ENV_VAR",
    "FLEET_WORKERS_ENV_VAR",
    "FleetExecutor",
    "MemberFailure",
    "available_executors",
    "get_executor_spec",
    "register_executor",
    "resolve_executor_name",
    "resolve_fleet_executor",
    "resolve_fleet_hosts",
    "resolve_fleet_on_failure",
    "resolve_fleet_retries",
    "resolve_fleet_secret",
    "resolve_fleet_sessions",
    "resolve_fleet_timeout",
    "resolve_max_workers",
    "unregister_executor",
    # gateway config (PR 8; the service itself is repro.gateway)
    "DEFAULT_GATEWAY_BIND",
    "GATEWAY_BIND_ENV_VAR",
    "GATEWAY_TOKENS_ENV_VAR",
    "GATEWAY_TOKEN_FILE_ENV_VAR",
    "resolve_gateway_bind",
    "resolve_gateway_token_file",
    # evidence search config (PR 10; the index itself is repro.search)
    "SEARCH_FRAGMENT_COUNT_ENV_VAR",
    "SEARCH_FRAGMENT_SIZE_ENV_VAR",
    "SEARCH_MAX_HITS_ENV_VAR",
    "resolve_search_fragment_count",
    "resolve_search_fragment_size",
    "resolve_search_max_hits",
    # store façade
    "ArchiveReceipt",
    "AuditReport",
    "EvidenceExport",
    "FormatReport",
    "MemberVerdictRecord",
    "ObjectInfo",
    "SealReceipt",
    "StoreConfig",
    "TamperEvidentStore",
    "VerifyReport",
    # fleet façade (PR 4; rebalance PR 5)
    "FleetEvidenceExport",
    "FleetOpStats",
    "FleetStore",
    "MigrationReport",
    "coerce_member",
])

#: The top-level convenience re-exports the quick start relies on.
EXPECTED_TOP_LEVEL = {
    "TamperEvidentStore", "StoreConfig", "ObjectInfo", "SealReceipt",
    "VerifyReport", "AuditReport", "ExecutionPolicy", "EngineSpec",
    "engine", "FleetStore",
}


def test_api_all_snapshot():
    assert sorted(api.__all__) == EXPECTED_API, (
        "repro.api.__all__ changed; update EXPECTED_API (and API.md) "
        "deliberately if this is intended")


def test_every_api_name_importable():
    for name in api.__all__:
        assert getattr(api, name) is not None, name


def test_dir_covers_lazy_exports():
    listing = dir(api)
    for name in api.__all__:
        assert name in listing


def test_top_level_reexports():
    missing = EXPECTED_TOP_LEVEL - set(repro.__all__)
    assert not missing, f"top-level façade exports missing: {missing}"
    for name in EXPECTED_TOP_LEVEL:
        assert getattr(repro, name) is getattr(api, name)


def test_version_is_v2():
    assert repro.__version__ == "2.1.0"
