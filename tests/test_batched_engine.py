"""Scalar <-> batched equivalence of the format/physics/audit engine.

PR 1 proved the span engine's per-dot electrical protocol equivalent to
the scalar reference; this suite does the same for the batched layers
on top of it: the vectorized format-time defect scan, the
:class:`FilmEnsemble` physics sweeps, the level-at-a-time venti builds
and the batched line-verification sweep.
"""

import numpy as np
import pytest

from repro.device.sero import DeviceConfig, SERODevice, VerifyStatus
from repro.integrity.fossil import FossilizedIndex
from repro.integrity.venti import VentiStore
from repro.medium.defects import defective_dots_in_block, scan_for_defects
from repro.medium.geometry import MediumGeometry, geometry_for_blocks
from repro.medium.medium import MediumConfig, PatternedMedium
from repro.physics.anisotropy import calibrated_model
from repro.physics.annealing import FilmEnsemble, FilmState, anneal, anneal_series, destruction_temperature
from repro.physics.constants import AS_GROWN_K
from repro.physics.torque import measure_anisotropy, measure_anisotropy_batch
from repro.physics.xrd import (
    high_angle_scan,
    high_angle_scan_set,
    low_angle_scan,
    low_angle_scan_set,
)
from repro.workloads.fleet import FleetScheduler

PAYLOAD = bytes(range(256)) * 2


def _defect_medium(seed: int = 11) -> PatternedMedium:
    geom = MediumGeometry(cols=64 * 24, rows=6, dots_per_block=96)
    return PatternedMedium(geom, MediumConfig(switching_sigma=0.35,
                                              write_field=1.0, seed=seed))


# -- format: scan_for_defects --------------------------------------------------


def test_defect_scan_scalar_vectorized_identical():
    scalar = scan_for_defects(_defect_medium(), tolerance=1,
                              e_region_dots=48, ecc_word_bits=24,
                              vectorized=False)
    batched = scan_for_defects(_defect_medium(), tolerance=1,
                               e_region_dots=48, ecc_word_bits=24,
                               vectorized=True)
    assert batched.bad_blocks == scalar.bad_blocks
    assert batched.fragile_blocks == scalar.fragile_blocks
    assert batched.defective_dots == scalar.defective_dots
    assert batched.scanned_blocks == scalar.scanned_blocks


def test_defect_scan_counters_identical():
    # Both paths issue the same per-block span I/O sequence.
    scalar_medium = _defect_medium()
    batched_medium = _defect_medium()
    scan_for_defects(scalar_medium, vectorized=False)
    scan_for_defects(batched_medium, vectorized=True)
    assert batched_medium.counters == scalar_medium.counters


def test_defect_scan_ecc_word_rule():
    # Two defects inside one codeword make a block bad regardless of
    # the total-count tolerance, in both paths.
    for vectorized in (False, True):
        report = scan_for_defects(_defect_medium(), tolerance=10 ** 6,
                                  ecc_word_bits=12, vectorized=vectorized)
        counts = {}
        medium = _defect_medium()
        for pba in range(medium.geometry.total_blocks):
            start, end = medium.geometry.block_span(pba)
            defects = np.flatnonzero(medium.defect_map(start, end))
            words = set()
            doubled = False
            for offset in defects:
                word = int(offset) // 12
                if word in words:
                    doubled = True
                words.add(word)
            counts[pba] = doubled
        assert report.bad_blocks == {pba for pba, d in counts.items() if d}


def test_defective_dots_in_block_matches_scalar_ground_truth():
    medium = _defect_medium()
    medium.heat_dot(5)  # heated dots must not count as defective
    for pba in range(medium.geometry.total_blocks):
        start, end = medium.geometry.block_span(pba)
        expected = [i for i in range(start, end)
                    if not medium.is_writable(i) and not medium.is_heated(i)]
        assert defective_dots_in_block(medium, pba) == expected


# -- physics: FilmEnsemble / sweeps --------------------------------------------


def test_film_ensemble_anneal_matches_looped_anneal():
    temps = np.linspace(25.0, 700.0, 53)
    ensemble = FilmEnsemble.fresh(temps.size).anneal(temps, 1800.0)
    looped = [anneal(FilmState(), float(t), 1800.0) for t in temps]
    np.testing.assert_allclose(ensemble.sharpness,
                               [s.sharpness for s in looped], rtol=1e-6)
    np.testing.assert_allclose(ensemble.crystalline_fraction,
                               [s.crystalline_fraction for s in looped],
                               rtol=1e-6, atol=1e-12)


def test_film_ensemble_multi_step_history():
    ensemble = FilmEnsemble.fresh(3)
    ensemble.anneal([100.0, 400.0, 700.0], 600.0)
    ensemble.anneal(300.0, 60.0)
    looped = []
    for t in (100.0, 400.0, 700.0):
        state = anneal(FilmState(), t, 600.0)
        looped.append(anneal(state, 300.0, 60.0))
    np.testing.assert_allclose(ensemble.sharpness,
                               [s.sharpness for s in looped], rtol=1e-6)
    states = ensemble.states()
    for state, reference in zip(states, looped):
        assert state.thermal_history == pytest.approx(
            reference.thermal_history)
    assert bool(ensemble.is_destroyed[2]) == looped[2].is_destroyed


def test_film_ensemble_rejects_bad_inputs():
    ensemble = FilmEnsemble.fresh(2)
    with pytest.raises(ValueError):
        ensemble.anneal([100.0, 200.0, 300.0], 60.0)
    with pytest.raises(ValueError):
        ensemble.anneal(-300.0, 60.0)
    with pytest.raises(ValueError):
        ensemble.anneal(100.0, -1.0)


def test_anneal_series_vectorized_matches_scalar():
    temps = [25.0, 300.0, 500.0, 650.0, 700.0]
    fast = anneal_series(temps, vectorized=True)
    slow = anneal_series(temps, vectorized=False)
    assert [s.sharpness for s in fast] == \
        pytest.approx([s.sharpness for s in slow], rel=1e-6)
    for fast_state, slow_state in zip(fast, slow):
        assert fast_state.thermal_history == \
            pytest.approx(slow_state.thermal_history)


def test_destruction_temperature_sweep_matches_scalar():
    durations = np.array([1e-4, 1.0, 60.0, 1800.0])
    sweep = destruction_temperature(duration_s=durations)
    scalar = [destruction_temperature(duration_s=float(d)) for d in durations]
    np.testing.assert_allclose(sweep, scalar, rtol=1e-12)
    assert isinstance(destruction_temperature(), float)


def test_measure_anisotropy_batch_matches_scalar():
    model = calibrated_model(AS_GROWN_K)
    ensemble = FilmEnsemble.fresh(24).anneal(
        np.linspace(25.0, 700.0, 24), 1800.0)
    k_true = model.k_eff_array(ensemble.sharpness,
                               ensemble.crystalline_fraction)
    batch = measure_anisotropy_batch(k_true)
    scalar = [measure_anisotropy(float(k)).k_measured for k in k_true]
    np.testing.assert_allclose(batch, scalar, rtol=1e-8)


def test_k_eff_array_matches_scalar():
    model = calibrated_model(AS_GROWN_K)
    sharp = np.linspace(0.0, 1.0, 11)
    cf = np.linspace(0.0, 0.5, 11)
    batch = model.k_eff_array(sharp, cf)
    scalar = [model.k_eff(float(s), float(c)) for s, c in zip(sharp, cf)]
    np.testing.assert_allclose(batch, scalar, rtol=1e-12)
    with pytest.raises(ValueError):
        model.k_eff_array(np.array([1.5]))


def test_xrd_scan_sets_match_scalar_scans():
    ensemble = FilmEnsemble.fresh(9).anneal(
        np.linspace(25.0, 700.0, 9), 1800.0)
    states = ensemble.states()
    low = low_angle_scan_set(ensemble)
    high = high_angle_scan_set(ensemble)
    assert len(low) == len(high) == len(states)
    for i, state in enumerate(states):
        np.testing.assert_allclose(low.scan(i).intensity,
                                   low_angle_scan(state).intensity,
                                   rtol=1e-9)
        np.testing.assert_allclose(high.scan(i).intensity,
                                   high_angle_scan(state).intensity,
                                   rtol=1e-9)
    assert low.scans()[0].peak_two_theta(6.0, 10.0) == \
        pytest.approx(low_angle_scan(states[0]).peak_two_theta(6.0, 10.0))


# -- audit: venti / verify_lines ----------------------------------------------


def _store(batched: bool, total_blocks: int = 128) -> VentiStore:
    device = SERODevice.create(total_blocks)
    return VentiStore(device=device, arena_start=0,
                      arena_blocks=total_blocks, batched=batched)


def test_venti_batched_build_byte_identical():
    rng = np.random.default_rng(7)
    data = rng.integers(0, 256, size=9000, dtype=np.uint8).tobytes()
    sequential = _store(batched=False)
    batched = _store(batched=True)
    root_seq = sequential.put_stream(data)
    root_bat = batched.put_stream(data)
    assert root_bat == root_seq
    assert batched._index == sequential._index  # same scores, same PBAs
    assert batched.blocks_used() == sequential.blocks_used()
    assert batched.read_stream(root_bat) == data
    assert batched.verify_tree(root_bat) == []


def test_venti_batched_dedup_within_and_across_levels():
    data = b"\xab" * (3 * 509)  # three identical leaves
    sequential = _store(batched=False)
    batched = _store(batched=True)
    assert batched.put_stream(data) == sequential.put_stream(data)
    assert batched.blocks_used() == sequential.blocks_used()
    # a repeated stream adds nothing
    used = batched.blocks_used()
    batched.put_stream(data)
    assert batched.blocks_used() == used


def test_venti_batched_empty_stream():
    sequential = _store(batched=False)
    batched = _store(batched=True)
    assert batched.put_stream(b"") == sequential.put_stream(b"")
    assert batched.read_stream(batched.put_stream(b"")) == b""


def test_venti_snapshot_and_audit_batched():
    store = _store(batched=True)
    root = store.snapshot("friday", b"ledger " * 100, timestamp=42)
    audit = store.audit()
    assert len(audit) == len(store.sealed_scores)
    assert all(r.status is VerifyStatus.INTACT for r in audit.values())
    assert store.verify_sealed(root).status is VerifyStatus.INTACT


def test_verify_lines_matches_verify_line():
    def build(span: bool) -> SERODevice:
        device = SERODevice.create(
            32, config=DeviceConfig(span_engine=span))
        for start in (0, 8, 16):
            for pba in range(start + 1, start + 8):
                device.write_block(pba, PAYLOAD)
            device.heat_line(start, 8, timestamp=start)
        return device

    device = build(True)
    starts = [rec.start for rec in device.heated_lines]
    batched = device.verify_lines(starts)
    reference = [build(True).verify_line(s) for s in starts]
    for got, want in zip(batched, reference):
        assert got.status is want.status is VerifyStatus.INTACT
        assert got.stored_hash == want.stored_hash
        assert got.computed_hash == want.computed_hash
    # scalar devices fall back to the per-line loop with equal verdicts
    scalar = build(False)
    for result in scalar.verify_lines([rec.start for rec in scalar.heated_lines]):
        assert result.status is VerifyStatus.INTACT


def test_verify_lines_simulated_cost_matches_sequential():
    # Batched verification replays the sequential protocol's scanner
    # charge order: seek charges are identical (deterministic) and the
    # erb transfer totals agree up to heated-cell retry randomness.
    def build() -> SERODevice:
        device = SERODevice.create(32)
        for start in (0, 8, 16):
            for pba in range(start + 1, start + 8):
                device.write_block(pba, PAYLOAD)
            device.heat_line(start, 8, timestamp=start)
        return device

    sequential = build()
    batched = build()
    sequential.account.reset()
    batched.account.reset()
    starts = [rec.start for rec in sequential.heated_lines]
    for start in starts:
        sequential.verify_line(start)
    batched.verify_lines(starts)
    seq_seek = sequential.account.by_category.get("seek", 0.0)
    bat_seek = batched.account.by_category.get("seek", 0.0)
    assert bat_seek == pytest.approx(seq_seek)
    assert batched.account.elapsed == pytest.approx(
        sequential.account.elapsed, rel=0.02)


def test_verify_lines_detects_tampering_and_virgin_blocks():
    device = SERODevice.create(32)
    for pba in range(1, 8):
        device.write_block(pba, PAYLOAD)
    device.heat_line(0, 8)
    # overwrite a data block behind the driver's back (insider attack)
    from repro.device.sector import encode_frame

    device.medium.write_mag_span(
        device.geometry.block_span(3)[0], encode_frame(3, b"\x00" * 512))
    results = device.verify_lines([0, 16])
    assert results[0].status is VerifyStatus.HASH_MISMATCH
    assert results[1].status is VerifyStatus.NOT_A_LINE
    assert device.verify_lines([]) == []


def test_write_block_run_equivalent_to_sequential_writes():
    run_device = SERODevice.create(16)
    seq_device = SERODevice.create(16)
    payloads = [bytes([i]) * 512 for i in range(5)]
    run_device.write_block_run(2, payloads)
    for i, payload in enumerate(payloads):
        seq_device.write_block(2 + i, payload)
    for i, payload in enumerate(payloads):
        assert run_device.read_block(2 + i) == payload
        assert seq_device.read_block(2 + i) == payload
    assert run_device.medium.counters["mwb"] == \
        seq_device.medium.counters["mwb"]


def test_fossil_audit_matches_per_node_verdicts():
    device = SERODevice.create(64)
    index = FossilizedIndex(device, arena_start=0, arena_blocks=64)
    rng = np.random.default_rng(3)
    while not index.sealed_nodes:
        index.insert(rng.bytes(32))
    audit = index.audit()
    assert set(audit) == set(index.sealed_nodes)
    for node_id, result in audit.items():
        assert result.status is device.verify_line(node_id).status


# -- fleet ---------------------------------------------------------------------


def test_fleet_format_and_audit():
    fleet = FleetScheduler.build(3, 16, switching_sigma=0.02)
    formatted = fleet.format_fleet()
    assert formatted.operation == "format"
    assert formatted.device_count == 3
    assert formatted.blocks_processed == 48
    assert formatted.blocks_per_second > 0

    for device in fleet.devices:
        start = next(s for s in range(0, 16, 2)
                     if s not in device.bad_blocks
                     and s not in device.fragile_blocks
                     and s + 1 not in device.bad_blocks)
        device.write_block(start + 1, PAYLOAD)
        device.heat_line(start, 2)
    audited = fleet.audit_fleet()
    assert audited.operation == "audit"
    assert audited.lines_verified == 3
    assert audited.intact_lines == 3
    assert audited.tampered_lines == 0


def test_fleet_audit_flags_tampered_device():
    fleet = FleetScheduler.build(2, 16)
    fleet.format_fleet()
    for device in fleet.devices:
        device.write_block(1, PAYLOAD)
        device.heat_line(0, 2)
    victim = fleet.devices[1]
    from repro.device.sector import encode_frame

    victim.medium.write_mag_span(
        victim.geometry.block_span(1)[0], encode_frame(1, b"\xff" * 512))
    report = fleet.audit_fleet()
    assert report.intact_lines == 1
    assert report.tampered_lines == 1
    assert report.devices[1].tampered_lines == 1
