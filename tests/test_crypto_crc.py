"""CRC-32 / CRC-16-CCITT known-answer and property tests."""

import binascii

import pytest

from repro.crypto.crc import crc16_ccitt, crc32


@pytest.mark.parametrize("data", [
    b"", b"a", b"123456789", b"hello world", bytes(range(256)),
])
def test_crc32_matches_binascii(data):
    assert crc32(data) == binascii.crc32(data)


def test_crc32_check_value():
    # the standard CRC-32 check value for "123456789"
    assert crc32(b"123456789") == 0xCBF43926


def test_crc16_ccitt_check_value():
    # CRC-16/CCITT-FALSE check value for "123456789"
    assert crc16_ccitt(b"123456789") == 0x29B1


def test_crc16_empty():
    assert crc16_ccitt(b"") == 0xFFFF  # init value untouched


def test_crc32_detects_single_bit_flip():
    data = bytearray(b"The quick brown fox jumps over the lazy dog")
    reference = crc32(bytes(data))
    for byte_index in (0, 10, len(data) - 1):
        for bit in (0, 3, 7):
            mutated = bytearray(data)
            mutated[byte_index] ^= 1 << bit
            assert crc32(bytes(mutated)) != reference


def test_crc16_detects_single_bit_flip():
    data = bytearray(b"sector header")
    reference = crc16_ccitt(bytes(data))
    for byte_index in range(len(data)):
        mutated = bytearray(data)
        mutated[byte_index] ^= 0x01
        assert crc16_ccitt(bytes(mutated)) != reference


def test_crc32_range():
    assert 0 <= crc32(b"anything") <= 0xFFFFFFFF


def test_crc16_range():
    assert 0 <= crc16_ccitt(b"anything") <= 0xFFFF


def test_crc32_deterministic():
    assert crc32(b"same") == crc32(b"same")


def test_crc32_seed_continuation_differs_from_fresh():
    first = crc32(b"part1")
    continued = crc32(b"part2", first)
    assert continued != crc32(b"part2")
