"""Line-hash construction tests (address binding = anti-copy-masking)."""

import pytest

from repro.crypto.hashutil import HASH_SIZE, line_hash


def test_hash_length():
    assert len(line_hash([1], [b"x" * 512])) == HASH_SIZE == 32


def test_deterministic():
    assert line_hash([1, 2], [b"a", b"b"]) == line_hash([1, 2], [b"a", b"b"])


def test_data_sensitivity():
    assert line_hash([1], [b"a"]) != line_hash([1], [b"b"])


def test_address_sensitivity():
    # the Section 5.2 defence: same data at different PBAs hashes differently
    assert line_hash([1], [b"a"]) != line_hash([2], [b"a"])


def test_without_addresses_copies_collide():
    # the deliberate ablation mode
    h1 = line_hash([1], [b"a"], include_addresses=False)
    h2 = line_hash([99], [b"a"], include_addresses=False)
    assert h1 == h2


def test_order_sensitivity():
    assert line_hash([1, 2], [b"a", b"b"]) != line_hash([1, 2], [b"b", b"a"])


def test_mismatched_lengths_rejected():
    with pytest.raises(ValueError):
        line_hash([1, 2], [b"a"])


def test_negative_address_rejected():
    with pytest.raises(ValueError):
        line_hash([-1], [b"a"])


def test_block_boundary_ambiguity_prevented():
    # address framing prevents "ab"+"c" == "a"+"bc" collisions
    assert line_hash([1, 2], [b"ab", b"c"]) != line_hash([1, 2], [b"a", b"bc"])
