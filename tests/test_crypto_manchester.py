"""Manchester cell codec tests (the Fig 3 / Molnar encoding)."""

import pytest

from repro.crypto.manchester import (
    CellState,
    bits_to_bytes,
    bytes_to_bits,
    classify_cell,
    decode_bytes,
    decode_pattern,
    encode_bits,
    encode_bytes,
)
from repro.errors import InvalidCellError


def test_encode_zero_is_hu():
    assert encode_bits([0]) == [True, False]


def test_encode_one_is_uh():
    assert encode_bits([1]) == [False, True]


def test_encode_rejects_non_binary():
    with pytest.raises(ValueError):
        encode_bits([2])


def test_cell_classification():
    assert classify_cell(False, False) is CellState.UNUSED
    assert classify_cell(True, False) is CellState.ZERO
    assert classify_cell(False, True) is CellState.ONE
    assert classify_cell(True, True) is CellState.TAMPERED


@pytest.mark.parametrize("data", [b"", b"\x00", b"\xff", b"\xa5\x5a", bytes(range(256))])
def test_bytes_roundtrip(data):
    assert decode_bytes(encode_bytes(data)) == data


def test_every_written_cell_has_exactly_one_heated_dot():
    pattern = encode_bytes(bytes(range(64)))
    for i in range(0, len(pattern), 2):
        assert pattern[i] ^ pattern[i + 1]  # exactly one True


def test_heated_dot_never_has_heated_cell_neighbour():
    # within a cell, at most one H: the reliability property of Sec. 3
    pattern = encode_bytes(b"\x0f\xf0" * 8)
    for i in range(0, len(pattern), 2):
        assert not (pattern[i] and pattern[i + 1])


def test_decode_reports_tampered_cells():
    pattern = encode_bits([1, 0, 1])
    pattern[0] = True  # cell 0 becomes HH (was UH)
    result = decode_pattern(pattern)
    assert result.is_tampered
    assert result.tampered_cells == [0]
    assert not result.is_complete


def test_decode_reports_unused_cells():
    pattern = encode_bits([1, 0]) + [False, False]
    result = decode_pattern(pattern)
    assert result.unused_cells == [2]
    assert not result.is_tampered


def test_to_bytes_refuses_incomplete():
    result = decode_pattern([False, False] * 8)
    with pytest.raises(InvalidCellError):
        result.to_bytes()


def test_odd_pattern_rejected():
    with pytest.raises(ValueError):
        decode_pattern([True])


def test_tampering_is_one_way_from_any_written_cell():
    # from 0 (HU) or 1 (UH), heating the other dot always gives HH
    for bits in ([0], [1]):
        pattern = encode_bits(bits)
        pattern[0] = True
        pattern[1] = True
        assert decode_pattern(pattern).is_tampered


def test_bits_bytes_helpers_roundtrip():
    data = bytes(range(32))
    assert bits_to_bytes(bytes_to_bits(data)) == data


def test_bits_to_bytes_needs_multiple_of_eight():
    with pytest.raises(ValueError):
        bits_to_bytes([1, 0, 1])


def test_msb_first_order():
    assert bytes_to_bits(b"\x80")[0] == 1
    assert bytes_to_bits(b"\x01")[-1] == 1


def test_decode_result_positions_stay_aligned():
    pattern = encode_bits([1, 1, 0])
    pattern[2] = True  # cell 1 -> HH
    result = decode_pattern(pattern)
    assert result.bits == [1, None, 0]
