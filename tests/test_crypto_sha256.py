"""Tests for the pure-Python SHA-256 against hashlib and NIST vectors."""

import hashlib

import pytest

from repro.crypto import sha256 as mod
from repro.crypto.sha256 import SHA256, get_backend, set_backend, sha256_digest

# NIST FIPS 180-4 example vectors
VECTORS = [
    (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
    (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
    (b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
     "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"),
    (b"a" * 1_000_000,
     "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"),
]


@pytest.mark.parametrize("message, expected", VECTORS)
def test_nist_vectors(message, expected):
    assert SHA256(message).hexdigest() == expected


@pytest.mark.parametrize("size", [0, 1, 55, 56, 57, 63, 64, 65, 127, 128, 1000])
def test_matches_hashlib_across_block_boundaries(size):
    data = bytes(range(256)) * (size // 256 + 1)
    data = data[:size]
    assert SHA256(data).digest() == hashlib.sha256(data).digest()


def test_incremental_equals_oneshot():
    h = SHA256()
    for chunk in (b"hello ", b"wor", b"ld", b"!" * 100):
        h.update(chunk)
    assert h.digest() == SHA256(b"hello world" + b"!" * 100).digest()


def test_digest_does_not_finalise():
    h = SHA256(b"abc")
    first = h.digest()
    assert h.digest() == first  # repeatable
    h.update(b"def")
    assert h.digest() == SHA256(b"abcdef").digest()


def test_copy_is_independent():
    h = SHA256(b"abc")
    clone = h.copy()
    clone.update(b"def")
    assert h.digest() == SHA256(b"abc").digest()
    assert clone.digest() == SHA256(b"abcdef").digest()


def test_update_accepts_bytearray_and_memoryview():
    h = SHA256()
    h.update(bytearray(b"abc"))
    h2 = SHA256()
    h2.update(memoryview(b"abc"))
    assert h.digest() == h2.digest() == SHA256(b"abc").digest()


def test_digest_size_and_block_size():
    assert SHA256().digest_size == 32
    assert SHA256().block_size == 64
    assert len(SHA256(b"x").digest()) == 32


def test_backend_switching():
    original = mod.get_pinned_backend()  # None unless explicitly pinned
    try:
        set_backend("pure")
        pure = sha256_digest(b"backend test")
        set_backend("hashlib")
        fast = sha256_digest(b"backend test")
        assert pure == fast == hashlib.sha256(b"backend test").digest()
    finally:
        set_backend(original)


def test_pin_roundtrip_does_not_install_a_pin():
    # the documented save/restore idiom must leave the policy layer in
    # charge when no pin was set to begin with
    assert mod.get_pinned_backend() is None
    saved = mod.get_pinned_backend()
    set_backend("pure")
    set_backend(saved)
    assert mod.get_pinned_backend() is None
    assert get_backend() == "hashlib"


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        set_backend("md5")


def test_sha256_digest_multiple_chunks():
    assert sha256_digest(b"ab", b"c") == hashlib.sha256(b"abc").digest()


def test_sha256_iter_streaming():
    chunks = [b"a" * 100, b"b" * 100, b"c"]
    assert mod.sha256_iter(iter(chunks)) == hashlib.sha256(b"".join(chunks)).digest()


def test_hexdigest_format():
    hx = SHA256(b"abc").hexdigest()
    assert len(hx) == 64 and all(c in "0123456789abcdef" for c in hx)
