"""Rivest-Shamir WOM code tests."""

import itertools

import pytest

from repro.crypto.wom import (
    EXPANSION,
    SYMBOL_SIZE,
    WOMBlock,
    decode_bits,
    decode_word,
    encode_bits,
    encode_pair,
    rewrite_word,
)
from repro.errors import InvalidCellError

ALL_PAIRS = [(0, 0), (0, 1), (1, 0), (1, 1)]


@pytest.mark.parametrize("value", ALL_PAIRS)
def test_generation1_roundtrip(value):
    word = encode_pair(value, 1)
    assert decode_word(word) == (value, 1)


@pytest.mark.parametrize("value", ALL_PAIRS)
def test_generation2_roundtrip(value):
    word = encode_pair(value, 2)
    assert decode_word(word) == (value, 2)


def test_generation_weights():
    for value in ALL_PAIRS:
        assert sum(encode_pair(value, 1)) <= 1
        assert sum(encode_pair(value, 2)) >= 2


def test_rewrite_never_clears_bits():
    # the write-once property: generation 2 only sets more bits
    for old, new in itertools.product(ALL_PAIRS, ALL_PAIRS):
        word1 = encode_pair(old, 1)
        word2 = rewrite_word(word1, new)
        for before, after in zip(word1, word2):
            assert not (before and not after)
        expected_gen = 1 if old == new else 2
        assert decode_word(word2) == (new, expected_gen)


def test_rewrite_of_generation2_fails():
    word = encode_pair((0, 1), 2)
    with pytest.raises(InvalidCellError):
        rewrite_word(word, (1, 1))


def test_invalid_generation():
    with pytest.raises(ValueError):
        encode_pair((0, 0), 3)


def test_bad_word_length():
    with pytest.raises(ValueError):
        decode_word((1, 0))


def test_flat_encode_decode_roundtrip():
    bits = [1, 0, 0, 1, 1, 1, 0, 0]
    assert decode_bits(encode_bits(bits)) == bits


def test_flat_encode_needs_even_bits():
    with pytest.raises(ValueError):
        encode_bits([1])


def test_block_two_generations():
    block = WOMBlock.blank(4)
    block.write([0, 1, 1, 0, 0, 0, 1, 1])
    assert block.read() == [0, 1, 1, 0, 0, 0, 1, 1]
    block.write([1, 1, 0, 0, 0, 1, 0, 0])
    assert block.read() == [1, 1, 0, 0, 0, 1, 0, 0]


def test_block_third_write_of_changed_symbol_fails():
    block = WOMBlock.blank(1)
    block.write([0, 1])
    block.write([1, 0])
    with pytest.raises(InvalidCellError):
        block.write([1, 1])


def test_block_unchanged_symbol_costs_nothing():
    block = WOMBlock.blank(1)
    block.write([0, 1])
    block.write([0, 1])  # same value: no generation consumed
    block.write([1, 0])  # still possible


def test_block_overflow_rejected():
    block = WOMBlock.blank(1)
    with pytest.raises(ValueError):
        block.write([1, 0, 1, 0])


def test_expansion_beats_manchester():
    from repro.crypto.manchester import EXPANSION as MANCHESTER_EXPANSION

    assert EXPANSION < MANCHESTER_EXPANSION
    assert SYMBOL_SIZE == 3
