"""Anti-fuse emulator tests, including cross-validation against the
patterned-medium simulator (the Section 9 validation plan)."""

import pytest

from repro.device.antifuse import AntifuseArray, AntifuseSEROEmulator
from repro.device.sero import SERODevice, VerifyStatus
from repro.errors import AlignmentError, ReadError, WriteError

PAYLOAD = bytes(range(256)) * 2


def test_fuse_is_one_way():
    bank = AntifuseArray(8)
    bank.blow(3)
    assert bank.read(3) == 1
    bank.blow(3)  # idempotent
    assert bank.read(3) == 1
    assert bank.blown_count() == 1
    assert not hasattr(bank, "clear")


def test_fuse_bounds():
    bank = AntifuseArray(4)
    with pytest.raises(IndexError):
        bank.blow(4)
    with pytest.raises(IndexError):
        bank.read(-1)


@pytest.fixture
def emulator() -> AntifuseSEROEmulator:
    emu = AntifuseSEROEmulator(total_blocks=64)
    for pba in range(1, 4):
        emu.write_block(pba, PAYLOAD)
    return emu


def test_emulator_block_roundtrip(emulator):
    assert emulator.read_block(1) == PAYLOAD
    with pytest.raises(ReadError):
        emulator.read_block(9)


def test_emulator_heat_and_verify(emulator):
    record = emulator.heat_line(0, 4, timestamp=7)
    assert record.timestamp == 7
    assert emulator.verify_line(0).status is VerifyStatus.INTACT
    assert emulator.is_block_heated(2)


def test_emulator_write_protect(emulator):
    emulator.heat_line(0, 4)
    with pytest.raises(WriteError):
        emulator.write_block(1, PAYLOAD)


def test_emulator_alignment_rules(emulator):
    with pytest.raises(AlignmentError):
        emulator.heat_line(1, 4)
    with pytest.raises(AlignmentError):
        emulator.heat_line(0, 3)


def test_emulator_detects_data_rewrite(emulator):
    emulator.heat_line(0, 4)
    emulator.tamper_rewrite_data(1, b"forged")
    assert emulator.verify_line(0).status is VerifyStatus.HASH_MISMATCH


def test_emulator_detects_fuse_tampering(emulator):
    emulator.heat_line(0, 4)
    emulator.tamper_blow_hash_fuse(0, cell=5)
    result = emulator.verify_line(0)
    assert result.status is VerifyStatus.CELL_TAMPERED
    assert 5 in result.tampered_cells


def test_emulator_virgin_line(emulator):
    assert emulator.verify_line(8).status is VerifyStatus.NOT_A_LINE


def _replay(device):
    """Identical scenario for simulator and emulator."""
    outcomes = []
    for pba in range(1, 8):
        device.write_block(pba, bytes([pba]) * 512)
    device.heat_line(0, 8, timestamp=1)
    outcomes.append(device.verify_line(0).status)
    # tamper with a data block
    if isinstance(device, AntifuseSEROEmulator):
        device.tamper_rewrite_data(3, b"FORGED")
    else:
        from repro.security import attacks

        attacks.mwb_data(device, 0, target_offset=3, forged=b"FORGED")
    outcomes.append(device.verify_line(0).status)
    # an untouched second line stays intact
    for pba in range(9, 16):
        device.write_block(pba, bytes([pba]) * 512)
    device.heat_line(8, 8, timestamp=2)
    outcomes.append(device.verify_line(8).status)
    return outcomes


def test_cross_validation_simulator_vs_emulator():
    """The Section 9 plan: the emulator validates the simulation —
    identical workloads must produce identical verdict sequences."""
    simulator_outcomes = _replay(SERODevice.create(64))
    emulator_outcomes = _replay(AntifuseSEROEmulator(total_blocks=64))
    assert simulator_outcomes == emulator_outcomes
    assert simulator_outcomes == [VerifyStatus.INTACT,
                                  VerifyStatus.HASH_MISMATCH,
                                  VerifyStatus.INTACT]


def test_cross_validation_line_hashes_agree():
    sim = SERODevice.create(64)
    emu = AntifuseSEROEmulator(total_blocks=64)
    for device in (sim, emu):
        for pba in range(1, 4):
            device.write_block(pba, b"\x7e" * 512)
    rec_sim = sim.heat_line(0, 4, timestamp=3)
    rec_emu = emu.heat_line(0, 4, timestamp=3)
    assert rec_sim.line_hash == rec_emu.line_hash
