"""Bit-operation tests: the Fig 2 state machine via mwb/mrb/ewb/erb."""

import pytest

from repro.device.bitops import BitOps
from repro.medium.geometry import MediumGeometry
from repro.medium.medium import PatternedMedium


@pytest.fixture
def ops() -> BitOps:
    geom = MediumGeometry(cols=64, rows=2, dots_per_block=16)
    return BitOps(PatternedMedium(geom))


def test_mwb_transitions_0_to_1_and_back(ops):
    ops.mwb(0, 1)
    assert ops.mrb(0) == 1
    ops.mwb(0, 0)
    assert ops.mrb(0) == 0


def test_ewb_is_one_way(ops):
    ops.mwb(0, 1)
    ops.ewb(0)
    assert ops.medium.is_heated(0)
    ops.mwb(0, 1)  # Fig 2: mwb on H has no effect
    assert ops.medium.is_heated(0)


def test_erb_returns_u_for_healthy_dot(ops):
    for bit in (0, 1):
        ops.mwb(1, bit)
        assert ops.erb(1) == "U"


def test_erb_restores_original_value(ops):
    # "the two inversions ensure that the original magnetic data is
    # restored for dots that have not been heated"
    ops.mwb(2, 1)
    ops.erb(2)
    assert ops.mrb(2) == 1
    ops.mwb(2, 0)
    ops.erb(2)
    assert ops.mrb(2) == 0


def test_erb_detects_heated_dot_with_enough_rounds(ops):
    ops.ewb(3)
    detections = sum(1 for _ in range(50) if ops.erb(3, rounds=4) == "H")
    # escape probability (1/4)^4 ~ 0.4%: essentially always detected
    assert detections >= 48


def test_erb_single_round_misses_sometimes(ops):
    # the raw five-step sequence misses a heated dot w.p. ~1/4
    ops.ewb(4)
    misses = sum(1 for _ in range(400) if ops.erb(4, rounds=1) == "U")
    assert 40 < misses < 160  # ~100 expected


def test_erb_rounds_validation(ops):
    with pytest.raises(ValueError):
        ops.erb(0, rounds=0)


def test_erb_bit_cost_is_five_for_single_round(ops):
    # "The erb operation is at least 5 times slower than mrb"
    assert ops.bit_cost(rounds=1) == 5
    assert ops.bit_cost(rounds=3) == 13


def test_erb_costs_real_medium_operations(ops):
    before = dict(ops.medium.counters)
    ops.mwb(5, 1)
    ops.erb(5, rounds=1)
    delta_reads = ops.medium.counters["mrb"] - before["mrb"]
    delta_writes = ops.medium.counters["mwb"] - before["mwb"] - 1
    assert delta_reads == 3
    assert delta_writes == 2
