"""Hamming(72,64) SECDED codec tests."""

import numpy as np
import pytest

from repro.device import ecc
from repro.errors import ReadError


def test_roundtrip_no_errors():
    data = bytes(range(64))
    bits = ecc.encode(data)
    result = ecc.decode(bits)
    assert result.data == data
    assert result.corrected == 0


def test_codeword_length():
    assert ecc.codeword_length(8) == 72
    assert ecc.codeword_length(536) == 4824
    with pytest.raises(ValueError):
        ecc.codeword_length(7)


def test_encode_rejects_partial_words():
    with pytest.raises(ValueError):
        ecc.encode(b"short")


def test_single_bit_error_corrected_every_position():
    data = b"\xa5" * 8
    clean = ecc.encode(data)
    for position in range(ecc.CODE_BITS):
        corrupted = clean.copy()
        corrupted[position] ^= 1
        result = ecc.decode(corrupted)
        assert result.data == data
        assert result.corrected == 1


def test_single_error_per_word_in_multiword_frame():
    data = bytes(range(256)) * 2  # 64 words
    clean = ecc.encode(data)
    corrupted = clean.copy()
    # one flipped bit in each of three different words
    for word in (0, 30, 63):
        corrupted[word * ecc.CODE_BITS + 17] ^= 1
    result = ecc.decode(corrupted)
    assert result.data == data
    assert result.corrected == 3


def test_double_bit_error_detected_not_miscorrected():
    data = b"\x37" * 8
    clean = ecc.encode(data)
    corrupted = clean.copy()
    corrupted[5] ^= 1
    corrupted[40] ^= 1
    with pytest.raises(ReadError):
        ecc.decode(corrupted)


def test_overall_parity_bit_flip_is_benign():
    data = b"\x00" * 8
    clean = ecc.encode(data)
    corrupted = clean.copy()
    corrupted[0] ^= 1  # the overall-parity position
    result = ecc.decode(corrupted)
    assert result.data == data


def test_random_payloads_roundtrip():
    rng = np.random.default_rng(9)
    for _ in range(20):
        data = rng.integers(0, 256, size=64, dtype=np.uint8).tobytes()
        assert ecc.decode(ecc.encode(data)).data == data


def test_decode_requires_whole_codewords():
    with pytest.raises(ValueError):
        ecc.decode(np.zeros(71, dtype=np.uint8))


def test_all_ones_payload():
    data = b"\xff" * 64
    assert ecc.decode(ecc.encode(data)).data == data
