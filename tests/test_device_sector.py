"""Sector framing tests (magnetic frames + electrical payloads)."""

import numpy as np
import pytest

from repro.device.sector import (
    BLOCK_SIZE,
    DOTS_PER_BLOCK,
    E_PAYLOAD_BYTES,
    ElectricalPayload,
    decode_frame,
    encode_frame,
)
from repro.errors import ReadError, WriteError


def test_frame_roundtrip():
    payload = bytes(range(256)) * 2
    frame = decode_frame(encode_frame(7, payload), expected_pba=7)
    assert frame.payload == payload
    assert frame.pba == 7
    assert frame.corrected_bits == 0


def test_overhead_close_to_paper_budget():
    # "about 15% sector overhead" — ours is 17.8%
    overhead = (DOTS_PER_BLOCK - BLOCK_SIZE * 8) / (BLOCK_SIZE * 8)
    assert 0.10 < overhead < 0.20


def test_wrong_payload_size_rejected():
    with pytest.raises(WriteError):
        encode_frame(0, b"short")


def test_negative_pba_rejected():
    with pytest.raises(WriteError):
        encode_frame(-1, b"\x00" * BLOCK_SIZE)


def test_address_mismatch_detected():
    # Section 3: the FS must "recognize when data is in the right place"
    bits = encode_frame(3, b"\x00" * BLOCK_SIZE)
    with pytest.raises(ReadError, match="not in the right place"):
        decode_frame(bits, expected_pba=9)


def test_unwritten_block_decodes_as_read_error():
    blank = np.zeros(DOTS_PER_BLOCK, dtype=np.uint8)
    with pytest.raises(ReadError):
        decode_frame(blank)


def test_single_bit_error_silently_corrected():
    bits = encode_frame(1, b"\xaa" * BLOCK_SIZE)
    bits = bits.copy()
    bits[100] ^= 1
    frame = decode_frame(bits, expected_pba=1)
    assert frame.payload == b"\xaa" * BLOCK_SIZE
    assert frame.corrected_bits == 1


def test_garbage_fails_crc_or_ecc():
    rng = np.random.default_rng(0)
    bits = rng.integers(0, 2, size=DOTS_PER_BLOCK, dtype=np.uint8)
    with pytest.raises(ReadError):
        decode_frame(bits)


def test_wrong_length_rejected():
    with pytest.raises(ReadError):
        decode_frame(np.zeros(100, dtype=np.uint8))


def test_electrical_payload_roundtrip():
    ep = ElectricalPayload(line_start=64, n_blocks_log2=3,
                           line_hash=b"\x5a" * 32, timestamp=99, flags=1)
    packed = ep.pack()
    assert len(packed) == E_PAYLOAD_BYTES
    out = ElectricalPayload.unpack(packed)
    assert out.line_start == 64
    assert out.n_blocks_log2 == 3
    assert out.line_hash == b"\x5a" * 32
    assert out.timestamp == 99
    assert out.flags == 1


def test_electrical_payload_crc_detects_corruption():
    packed = bytearray(ElectricalPayload(
        line_start=0, n_blocks_log2=1, line_hash=b"\x00" * 32).pack())
    packed[40] ^= 0xFF
    with pytest.raises(ReadError):
        ElectricalPayload.unpack(bytes(packed))


def test_electrical_payload_bad_hash_size():
    with pytest.raises(WriteError):
        ElectricalPayload(line_start=0, n_blocks_log2=1,
                          line_hash=b"short").pack()


def test_electrical_payload_wrong_length():
    with pytest.raises(ReadError):
        ElectricalPayload.unpack(b"\x00" * 10)
