"""SERODevice tests: the Section 3 sector/heat/verify contract."""

import pytest

from repro.device.sector import BLOCK_SIZE, E_PAYLOAD_BYTES
from repro.device.sero import DeviceConfig, SERODevice, VerifyStatus
from repro.errors import (
    AlignmentError,
    BadBlockError,
    HeatedBlockError,
    HeatError,
    ReadError,
    WriteError,
)
from repro.medium.medium import MediumConfig

PAYLOAD = bytes(range(256)) * 2


def _heated(device, start=0, n=4):
    for pba in range(start + 1, start + n):
        device.write_block(pba, PAYLOAD)
    return device.heat_line(start, n, timestamp=5)


def test_block_roundtrip(small_device):
    small_device.write_block(3, PAYLOAD)
    assert small_device.read_block(3) == PAYLOAD


def test_unwritten_block_read_fails(small_device):
    with pytest.raises(ReadError):
        small_device.read_block(5)


def test_pba_range_checked(small_device):
    with pytest.raises(ReadError):
        small_device.read_block(10_000)


def test_heat_line_basic(small_device):
    record = _heated(small_device)
    assert record.start == 0
    assert record.n_blocks == 4
    assert len(record.line_hash) == 32
    assert record.timestamp == 5


def test_heated_data_blocks_still_read_magnetically(small_device):
    _heated(small_device)
    # "Blocks 1..2^N-1 of a heated line can still be read magnetically"
    assert small_device.read_block(1) == PAYLOAD


def test_hash_block_not_readable_magnetically(small_device):
    _heated(small_device)
    with pytest.raises(HeatedBlockError):
        small_device.read_block(0)


def test_writes_into_heated_line_refused(small_device):
    _heated(small_device)
    with pytest.raises(HeatedBlockError):
        small_device.write_block(2, PAYLOAD)


def test_write_protect_can_be_disabled():
    device = SERODevice.create(64, config=DeviceConfig(
        enforce_write_protect=False))
    _heated(device)
    device.write_block(2, b"\x00" * BLOCK_SIZE)  # the raw attacker path
    assert device.verify_line(0).status is VerifyStatus.HASH_MISMATCH


def test_verify_intact(small_device):
    _heated(small_device)
    result = small_device.verify_line(0)
    assert result.status is VerifyStatus.INTACT
    assert not result.tamper_evident
    assert result.stored_hash == result.computed_hash


def test_line_alignment_enforced(small_device):
    with pytest.raises(AlignmentError):
        small_device.heat_line(1, 4)  # unaligned start
    with pytest.raises(AlignmentError):
        small_device.heat_line(0, 3)  # not a power of two
    with pytest.raises(AlignmentError):
        small_device.heat_line(0, 1)  # no data blocks
    with pytest.raises(AlignmentError):
        small_device.heat_line(60, 8)  # past the end (64-block device)


def test_overlapping_line_rejected(small_device):
    _heated(small_device, start=0, n=4)
    with pytest.raises(AlignmentError):
        small_device.heat_line(0, 8)  # would engulf the existing line


def test_reheat_same_line_is_harmless(small_device):
    _heated(small_device, start=0, n=4)
    record = small_device.heat_line(0, 4, timestamp=5)
    assert record.n_blocks == 4
    assert small_device.verify_line(0).status is VerifyStatus.INTACT


def test_reheat_with_changed_data_leaves_evidence():
    # heat, then force-change a data block, then re-heat: the new hash
    # differs, the ews produces HH cells and the heat fails loudly
    device = SERODevice.create(64, config=DeviceConfig(
        enforce_write_protect=False))
    _heated(device, start=0, n=4)
    device.write_block(1, b"\x11" * BLOCK_SIZE)
    with pytest.raises(HeatError):
        device.heat_line(0, 4, timestamp=6)
    assert device.verify_line(0).status is VerifyStatus.CELL_TAMPERED


def test_capacity_accounting(small_device):
    before = small_device.capacity_report()
    _heated(small_device, start=8, n=8)
    after = small_device.capacity_report()
    assert after["heated_blocks"] == before["heated_blocks"] + 8
    assert after["writable_blocks"] == before["writable_blocks"] - 8


def test_line_of_block_lookup(small_device):
    record = _heated(small_device, start=0, n=4)
    for pba in range(4):
        assert small_device.line_of_block(pba).start == record.start
    assert small_device.line_of_block(4) is None
    assert small_device.is_block_heated(2)
    assert not small_device.is_block_heated(9)


def test_scan_lines_recovers_registry(small_device):
    _heated(small_device, start=0, n=4)
    _heated(small_device, start=8, n=8)
    # forget everything, rediscover electrically
    recovered = small_device.scan_lines()
    starts = sorted(rec.start for rec in recovered)
    assert starts == [0, 8]
    assert small_device.is_block_heated(10)


def test_load_line_single(small_device):
    record = _heated(small_device, start=16, n=4)
    small_device._lines.clear()
    small_device._block_to_line.clear()
    loaded = small_device.load_line(16)
    assert loaded is not None
    assert loaded.line_hash == record.line_hash


def test_load_line_on_virgin_block_returns_none(small_device):
    assert small_device.load_line(32) is None


def test_probe_block_electrical(small_device):
    _heated(small_device, start=0, n=4)
    assert small_device.probe_block_electrical(0)
    assert not small_device.probe_block_electrical(10)


def test_ews_validates_payload_size(small_device):
    with pytest.raises(WriteError):
        small_device.ews_block(0, b"short")


def test_format_populates_bad_blocks():
    device = SERODevice.create(
        32, medium_config=MediumConfig(switching_sigma=0.5, write_field=1.0,
                                       seed=3))
    device.format()
    assert device.bad_blocks
    bad = next(iter(device.bad_blocks))
    with pytest.raises(BadBlockError):
        device.read_block(bad)


def test_heat_refuses_lines_with_bad_blocks():
    device = SERODevice.create(
        32, medium_config=MediumConfig(switching_sigma=0.5, write_field=1.0,
                                       seed=3))
    device.format()
    bad = min(device.bad_blocks)
    line_start = (bad // 4) * 4
    with pytest.raises(BadBlockError):
        device.heat_line(line_start, 4)


def test_format_after_heating_refused(small_device):
    _heated(small_device)
    with pytest.raises(WriteError):
        small_device.format()


def test_verify_all(small_device):
    _heated(small_device, start=0, n=4)
    _heated(small_device, start=8, n=8)
    results = small_device.verify_all()
    assert len(results) == 2
    assert all(r.status is VerifyStatus.INTACT for r in results)


def test_decommission_detection():
    device = SERODevice.create(8)
    for pba in (1, 2, 3, 5, 6, 7):
        device.write_block(pba, PAYLOAD)
    device.heat_line(0, 4)
    assert not device.is_decommissionable()
    device.heat_line(4, 4)
    assert device.is_decommissionable()


def test_timestamp_survives_scan(small_device):
    _heated(small_device, start=0, n=4)
    recovered = small_device.scan_lines()
    assert recovered[0].timestamp == 5
