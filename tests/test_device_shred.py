"""Shred-operation tests (Section 8 deletion)."""

import pytest

from repro.device.sero import SERODevice, VerifyStatus
from repro.device.shred import (
    ShredError,
    classify_destroyed_line,
    is_line_shredded,
    shred_line,
    shredded_lines,
)
from repro.errors import ReadError
from repro.security import attacks

PAYLOAD = b"\x5c" * 512


@pytest.fixture
def device_with_line(small_device):
    for pba in range(1, 4):
        small_device.write_block(pba, PAYLOAD)
    small_device.heat_line(0, 4, timestamp=1)
    return small_device


def test_shred_destroys_data(device_with_line):
    report = shred_line(device_with_line, 0)
    assert report.data_blocks == 3
    assert report.dots_heated > 0
    with pytest.raises(ReadError):
        device_with_line.read_block(1)


def test_shred_requires_heated_line(small_device):
    with pytest.raises(ShredError):
        shred_line(small_device, 0)


def test_shred_requires_line_start(device_with_line):
    with pytest.raises(ShredError):
        shred_line(device_with_line, 1)


def test_shredded_signature(device_with_line):
    assert not is_line_shredded(device_with_line, 0)
    shred_line(device_with_line, 0)
    assert is_line_shredded(device_with_line, 0)
    assert shredded_lines(device_with_line) == [0]


def test_shred_is_still_tamper_evident(device_with_line):
    # the hash block survives: the line announces destroyed data
    shred_line(device_with_line, 0)
    result = device_with_line.verify_line(0)
    assert result.tamper_evident
    assert result.status is VerifyStatus.UNREADABLE


def test_classification_distinguishes_shred_from_tamper(device_with_line):
    assert classify_destroyed_line(device_with_line, 0) == "intact"
    # partial ewb tampering is NOT a shred
    attacks.ewb_data(device_with_line, 0, n_dots=64)
    assert classify_destroyed_line(device_with_line, 0) == "tampered"
    # a full shred is
    shred_line(device_with_line, 0)
    assert classify_destroyed_line(device_with_line, 0) == "shredded"


def test_shred_charges_heat_time(device_with_line):
    device_with_line.account.reset()
    shred_line(device_with_line, 0)
    assert device_with_line.account.by_category.get("ewb", 0.0) > 0


def test_shred_leaves_other_lines_alone(small_device):
    for pba in list(range(1, 4)) + list(range(9, 16)):
        small_device.write_block(pba, PAYLOAD)
    small_device.heat_line(0, 4)
    small_device.heat_line(8, 8)
    shred_line(small_device, 0)
    assert small_device.verify_line(8).status is VerifyStatus.INTACT
    assert shredded_lines(small_device) == [0]
