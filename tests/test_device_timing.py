"""Timing model and scanner tests (the Section 3 cost structure)."""

import pytest

from repro.device.scanner import Scanner
from repro.device.timing import CostAccount, TimingModel
from repro.medium.geometry import geometry_for_blocks


def test_erb_is_five_bit_ops():
    timing = TimingModel()
    assert timing.t_erb == pytest.approx(
        3 * timing.t_mrb + 2 * timing.t_mwb)
    assert timing.t_erb >= 5 * min(timing.t_mrb, timing.t_mwb)


def test_ewb_much_slower_than_mwb():
    timing = TimingModel()
    assert timing.t_ewb >= 50 * timing.t_mwb


def test_transfer_time_uses_parallelism():
    timing = TimingModel(parallelism=64)
    one = timing.transfer_time(64, timing.t_mrb)
    two = timing.transfer_time(128, timing.t_mrb)
    assert two == pytest.approx(2 * one)
    assert timing.transfer_time(1, timing.t_mrb) == one  # ceil


def test_transfer_negative_bits_rejected():
    with pytest.raises(ValueError):
        TimingModel().transfer_time(-1, 1e-6)


def test_seek_time_distance_component():
    timing = TimingModel()
    near = timing.seek_time(1e-6)
    far = timing.seek_time(100e-6)
    assert far > near > timing.seek_settle


def test_cost_account_accumulates():
    account = CostAccount()
    account.charge("mrb", 0.5e-3)
    account.charge("mrb", 0.5e-3)
    account.charge("seek", 1e-3)
    assert account.elapsed == pytest.approx(2e-3)
    assert account.by_category["mrb"] == pytest.approx(1e-3)
    assert account.op_counts["seek"] == 1


def test_cost_account_rejects_negative():
    with pytest.raises(ValueError):
        CostAccount().charge("x", -1.0)


def test_cost_account_reset():
    account = CostAccount()
    account.charge("x", 1.0)
    account.reset()
    assert account.elapsed == 0.0
    assert not account.by_category


def _scanner() -> Scanner:
    from repro.device.sector import DOTS_PER_BLOCK

    geom = geometry_for_blocks(64, DOTS_PER_BLOCK)
    return Scanner(geometry=geom, timing=TimingModel(), account=CostAccount())


def test_sequential_access_is_free_after_first_seek():
    scanner = _scanner()
    scanner.seek_to_block(1)
    charged = [scanner.seek_to_block(pba) for pba in range(2, 10)]
    assert all(t == 0.0 for t in charged)


def test_random_access_pays_seeks():
    scanner = _scanner()
    scanner.seek_to_block(0)
    assert scanner.seek_to_block(40) > 0.0
    assert scanner.seek_to_block(3) > 0.0


def test_transfer_charges_by_kind():
    scanner = _scanner()
    t_read = scanner.transfer(4824, "mrb")
    t_heat = scanner.transfer(4824, "ewb")
    assert t_heat > 10 * t_read
    assert scanner.account.by_category["ewb"] == pytest.approx(t_heat)


def test_str_rendering():
    account = CostAccount()
    account.charge("mrb", 1e-3)
    assert "mrb" in str(account)
