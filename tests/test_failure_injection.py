"""Failure-injection tests: the stack under adverse conditions."""

import numpy as np
import pytest

from repro.device.sero import DeviceConfig, SERODevice, VerifyStatus
from repro.errors import HeatError, NoSpaceError, ReadError
from repro.fs.fsck import deep_scan, fsck
from repro.fs.lfs import FSConfig, SeroFS
from repro.medium.medium import MediumConfig

PAYLOAD = b"\x2f" * 512


def test_random_bit_rot_is_corrected_or_detected():
    """Flip random dots under a written block: ECC corrects up to one
    flip per 72-bit word; denser damage must raise ReadError, never
    return wrong data silently."""
    rng = np.random.default_rng(77)
    for n_flips in (1, 2, 8, 64):
        device = SERODevice.create(16)
        device.write_block(1, PAYLOAD)
        start, end = device.geometry.block_span(1)
        for index in rng.choice(end - start, size=n_flips, replace=False):
            dot = start + int(index)
            device.medium.write_mag(dot, 1 - device.medium.read_mag(dot))
        try:
            assert device.read_block(1) == PAYLOAD
        except ReadError:
            pass  # detected, which is acceptable for multi-bit damage


def test_heat_verify_failure_on_collision_with_prior_line():
    """Re-heating with different content must fail loudly and leave
    permanent HH evidence (Section 3's re-heat discussion)."""
    device = SERODevice.create(
        16, config=DeviceConfig(enforce_write_protect=False))
    for pba in range(1, 4):
        device.write_block(pba, PAYLOAD)
    device.heat_line(0, 4)
    device.write_block(2, b"\x00" * 512)
    with pytest.raises(HeatError):
        device.heat_line(0, 4)
    assert device.verify_line(0).status is VerifyStatus.CELL_TAMPERED


def test_fs_survives_repeated_out_of_space():
    fs = SeroFS.format(SERODevice.create(64))
    created = []
    for i in range(40):
        try:
            fs.create(f"/f{i}", bytes([i]) * 3000)
            created.append(f"/f{i}")
        except NoSpaceError:
            break
    assert created
    # everything that was created successfully is still readable
    for path in created:
        assert len(fs.read(path)) == 3000
    report = fsck(fs, verify_lines=False)
    assert report.clean, report.errors


def test_heat_failure_does_not_corrupt_file():
    """If no aligned extent exists the heat fails cleanly and the file
    stays intact and mutable."""
    fs = SeroFS.format(SERODevice.create(64))
    for name in ("a", "b", "c"):
        fs.create(f"/{name}", name.encode() * 5000)
    with pytest.raises(NoSpaceError):
        fs.heat_file("/a")  # needs a free aligned 16-block extent
    assert fs.read("/a") == b"a" * 5000
    fs.write("/a", b"z" * 100)  # still mutable
    assert fs.read("/a") == b"z" * 100


def test_mount_with_both_checkpoints_corrupted():
    device = SERODevice.create(256)
    fs = SeroFS.format(device)
    fs.create("/x", b"x")
    fs.checkpoint()
    # smash both checkpoint regions
    from repro.security.attacks import clear_directory

    clear_directory(fs)
    with pytest.raises(ReadError):
        SeroFS.mount(device)
    # but deep scan still works on whatever was heated
    assert deep_scan(device).recovered == []  # nothing heated yet: empty


def test_defective_medium_with_heated_lines_remount():
    device = SERODevice.create(
        256, medium_config=MediumConfig(switching_sigma=0.12,
                                        write_field=1.5, seed=20))
    device.format()
    fs = SeroFS.format(device)
    fs.create("/keep", b"k" * 2000)
    fs.heat_file("/keep")
    fs.checkpoint()
    remounted = SeroFS.mount(device)
    assert remounted.read("/keep") == b"k" * 2000
    assert remounted.verify_file("/keep").status is VerifyStatus.INTACT


def test_collateral_heating_device_still_functions():
    """With collateral heating enabled the layout is engineered safe
    (heat sink), so lines still heat and verify."""
    device = SERODevice.create(
        16, medium_config=MediumConfig(collateral_heating=True))
    for pba in range(1, 4):
        device.write_block(pba, PAYLOAD)
    device.heat_line(0, 4)
    assert device.verify_line(0).status is VerifyStatus.INTACT
    assert device.read_block(1) == PAYLOAD


def test_erb_rounds_one_device_still_verifies():
    """Even with the paper's bare 5-step erb (rounds=1) the retry
    logic at sector level keeps verify reliable."""
    device = SERODevice.create(
        16, config=DeviceConfig(erb_rounds=1, ers_cell_retries=10))
    for pba in range(1, 4):
        device.write_block(pba, PAYLOAD)
    device.heat_line(0, 4)
    for _ in range(5):
        assert device.verify_line(0).status is VerifyStatus.INTACT
