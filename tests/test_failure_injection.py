"""Failure-injection tests: the stack under adverse conditions.

The second half targets the fleet executor layer: a worker process
killed mid-pass, an RPC connection dropped mid-frame, and a member
raising inside a pass must each fail the pass with a clear, raised
error — never a hang or a silently partial report — while leaving
caller-held member references consistent (no half-folded state) and
the cached connection/process pools reusable for the next pass.
"""

import os
import socket
import threading
from functools import partial

import numpy as np
import pytest

import repro
import repro.api as api
from repro.device.sero import DeviceConfig, SERODevice, VerifyStatus
from repro.errors import (
    HeatError,
    ImmutableFileError,
    NoSpaceError,
    ReadError,
)
from repro.fs.fsck import deep_scan, fsck
from repro.fs.lfs import FSConfig, SeroFS
from repro.medium.medium import MediumConfig

PAYLOAD = b"\x2f" * 512


def test_random_bit_rot_is_corrected_or_detected():
    """Flip random dots under a written block: ECC corrects up to one
    flip per 72-bit word; denser damage must raise ReadError, never
    return wrong data silently."""
    rng = np.random.default_rng(77)
    for n_flips in (1, 2, 8, 64):
        device = SERODevice.create(16)
        device.write_block(1, PAYLOAD)
        start, end = device.geometry.block_span(1)
        for index in rng.choice(end - start, size=n_flips, replace=False):
            dot = start + int(index)
            device.medium.write_mag(dot, 1 - device.medium.read_mag(dot))
        try:
            assert device.read_block(1) == PAYLOAD
        except ReadError:
            pass  # detected, which is acceptable for multi-bit damage


def test_heat_verify_failure_on_collision_with_prior_line():
    """Re-heating with different content must fail loudly and leave
    permanent HH evidence (Section 3's re-heat discussion)."""
    device = SERODevice.create(
        16, config=DeviceConfig(enforce_write_protect=False))
    for pba in range(1, 4):
        device.write_block(pba, PAYLOAD)
    device.heat_line(0, 4)
    device.write_block(2, b"\x00" * 512)
    with pytest.raises(HeatError):
        device.heat_line(0, 4)
    assert device.verify_line(0).status is VerifyStatus.CELL_TAMPERED


def test_fs_survives_repeated_out_of_space():
    fs = SeroFS.format(SERODevice.create(64))
    created = []
    for i in range(40):
        try:
            fs.create(f"/f{i}", bytes([i]) * 3000)
            created.append(f"/f{i}")
        except NoSpaceError:
            break
    assert created
    # everything that was created successfully is still readable
    for path in created:
        assert len(fs.read(path)) == 3000
    report = fsck(fs, verify_lines=False)
    assert report.clean, report.errors


def test_heat_failure_does_not_corrupt_file():
    """If no aligned extent exists the heat fails cleanly and the file
    stays intact and mutable."""
    fs = SeroFS.format(SERODevice.create(64))
    for name in ("a", "b", "c"):
        fs.create(f"/{name}", name.encode() * 5000)
    with pytest.raises(NoSpaceError):
        fs.heat_file("/a")  # needs a free aligned 16-block extent
    assert fs.read("/a") == b"a" * 5000
    fs.write("/a", b"z" * 100)  # still mutable
    assert fs.read("/a") == b"z" * 100


def test_mount_with_both_checkpoints_corrupted():
    device = SERODevice.create(256)
    fs = SeroFS.format(device)
    fs.create("/x", b"x")
    fs.checkpoint()
    # smash both checkpoint regions
    from repro.security.attacks import clear_directory

    clear_directory(fs)
    with pytest.raises(ReadError):
        SeroFS.mount(device)
    # but deep scan still works on whatever was heated
    assert deep_scan(device).recovered == []  # nothing heated yet: empty


def test_defective_medium_with_heated_lines_remount():
    device = SERODevice.create(
        256, medium_config=MediumConfig(switching_sigma=0.12,
                                        write_field=1.5, seed=20))
    device.format()
    fs = SeroFS.format(device)
    fs.create("/keep", b"k" * 2000)
    fs.heat_file("/keep")
    fs.checkpoint()
    remounted = SeroFS.mount(device)
    assert remounted.read("/keep") == b"k" * 2000
    assert remounted.verify_file("/keep").status is VerifyStatus.INTACT


def test_collateral_heating_device_still_functions():
    """With collateral heating enabled the layout is engineered safe
    (heat sink), so lines still heat and verify."""
    device = SERODevice.create(
        16, medium_config=MediumConfig(collateral_heating=True))
    for pba in range(1, 4):
        device.write_block(pba, PAYLOAD)
    device.heat_line(0, 4)
    assert device.verify_line(0).status is VerifyStatus.INTACT
    assert device.read_block(1) == PAYLOAD


def test_erb_rounds_one_device_still_verifies():
    """Even with the paper's bare 5-step erb (rounds=1) the retry
    logic at sector level keeps verify reliable."""
    device = SERODevice.create(
        16, config=DeviceConfig(erb_rounds=1, ers_cell_retries=10))
    for pba in range(1, 4):
        device.write_block(pba, PAYLOAD)
    device.heat_line(0, 4)
    for _ in range(5):
        assert device.verify_line(0).status is VerifyStatus.INTACT


# ---------------------------------------------------------------------------
# Fleet executor layer under faults


def _member_snapshots(fleet):
    """Executor-invariant state of every caller-held member."""
    return [(dict(dev.medium.counters),
             dev.heated_lines,
             dev.medium._rng.bit_generator.state,
             dev.account.elapsed)
            for dev in fleet.devices]


def test_rpc_worker_killed_mid_task():
    """A worker that dies while executing a task (no reply ever sent)
    must surface as a raised RpcConnectionError, not a hang."""
    from repro.parallel import RpcConnectionError, RpcExecutor, \
        spawn_local_worker

    worker = spawn_local_worker()
    try:
        executor = RpcExecutor([worker.address])
        # os._exit on the worker: the process dies mid-request, after
        # the task was delivered but before any reply
        with pytest.raises(RpcConnectionError, match="before replying"):
            executor.run([partial(os._exit, 17)])
    finally:
        worker.stop()


def test_rpc_worker_killed_between_passes_fails_cleanly():
    """SIGKILL one of two workers: the next pass raises a descriptive
    error, caller-held members keep their pre-pass state, and both the
    member fleet and the surviving worker's pooled connections remain
    usable for a follow-up pass."""
    from repro.parallel import HashRing, RpcConnectionError, RpcExecutor, \
        close_connection_pools, parse_hosts, spawn_local_worker
    from repro.workloads.fleet import FleetScheduler

    worker_a, worker_b = spawn_local_worker(), spawn_local_worker()
    # kill a worker the ring actually assigned members to (the
    # executor's assignment is a pure function of the host set, so the
    # test can compute it) — the failed pass is then guaranteed
    hosts = parse_hosts([worker_a.address, worker_b.address])
    victim_addr = HashRing(hosts).lookup("member-0")
    victim, survivor = (worker_a, worker_b) \
        if worker_a.address == victim_addr else (worker_b, worker_a)
    try:
        fleet = FleetScheduler.build(
            3, 32, switching_sigma=0.02,
            executor=RpcExecutor([survivor.address, victim.address]))
        twin = FleetScheduler.build(3, 32, switching_sigma=0.02,
                                    executor="serial")
        assert fleet.format_fleet().fingerprints() == \
            twin.format_fleet().fingerprints()

        victim.kill()
        before = _member_snapshots(fleet)
        with pytest.raises(RpcConnectionError):
            fleet.audit_fleet()
        # no member state was folded back: caller references are
        # exactly as they were before the failed pass
        assert _member_snapshots(fleet) == before

        # the fleet (same member stores) carries on over the survivor,
        # byte-identical to the serial twin
        rest = FleetScheduler(fleet.stores,
                              executor=RpcExecutor([survivor.address]))
        assert rest.audit_fleet().fingerprints() == \
            twin.audit_fleet().fingerprints()
    finally:
        survivor.stop()
        victim.stop()
        close_connection_pools()


def test_session_worker_kill_and_restart_repins():
    """Session mode under a worker SIGKILL: the failed pass folds
    nothing (members keep their pre-pass state), and once a worker
    listens on that address again the next pass re-pins from the
    caller-held state and completes byte-identical to the serial twin
    — no RemoteTaskError, no stale pinned state."""
    from repro.parallel import HashRing, RpcConnectionError, RpcExecutor, \
        close_connection_pools, parse_hosts, spawn_local_worker
    from repro.workloads.fleet import FleetScheduler

    worker_a, worker_b = spawn_local_worker(), spawn_local_worker()
    hosts = parse_hosts([worker_a.address, worker_b.address])
    victim_addr = HashRing(hosts).lookup("member-0")
    victim, survivor = (worker_a, worker_b) \
        if worker_a.address == victim_addr else (worker_b, worker_a)
    replacement = None
    try:
        fleet = FleetScheduler.build(
            3, 32, switching_sigma=0.02,
            executor=RpcExecutor(list(hosts), sessions=True))
        twin = FleetScheduler.build(3, 32, switching_sigma=0.02,
                                    executor="serial")
        for f in (fleet, twin):
            f.format_fleet()
            f.seal_fleet(lines_per_device=2, line_blocks=4)

        victim.kill()
        before = _member_snapshots(fleet)
        with pytest.raises(RpcConnectionError):
            fleet.audit_fleet()
        # the dead worker's pinned copies are gone, but nothing was
        # folded: caller members are exactly as before the failed pass
        assert _member_snapshots(fleet) == before

        # a worker comes back on the same address: the pass re-pins
        # (fresh daemon, empty pin cache) and simply succeeds
        replacement = spawn_local_worker(victim_addr)
        assert fleet.audit_fleet().fingerprints() == \
            twin.audit_fleet().fingerprints()
        # and the pins are warm again: one more pass, still identical
        assert fleet.audit_fleet().fingerprints() == \
            twin.audit_fleet().fingerprints()
    finally:
        survivor.stop()
        victim.stop()
        if replacement is not None:
            replacement.stop()
        close_connection_pools()


def test_session_generation_bump_after_client_side_mutation():
    """A client-side mutation between pinned passes (here a direct
    block write on a caller-held device) must invalidate the pin: the
    next audit re-pins from the mutated state instead of silently
    reusing the stale worker copy."""
    from repro.parallel import RpcExecutor, close_connection_pools, \
        spawn_local_worker
    from repro.parallel.session import session_for
    from repro.workloads.fleet import FleetScheduler

    workers = [spawn_local_worker() for _ in range(2)]
    try:
        fleet = FleetScheduler.build(
            2, 32, switching_sigma=0.02,
            executor=RpcExecutor([w.address for w in workers],
                                 sessions=True))
        twin = FleetScheduler.build(2, 32, switching_sigma=0.02,
                                    executor="serial")
        for f in (fleet, twin):
            f.format_fleet()
            f.seal_fleet(lines_per_device=2, line_blocks=4)
            f.audit_fleet()

        generations = [session_for(store).generation
                       for store in fleet.stores]

        def mutate(device):  # a legitimate write outside any line
            pba = next(p for p in range(device.total_blocks - 1, 0, -1)
                       if not device.is_block_heated(p)
                       and p not in device.bad_blocks)
            device.write_block(pba, PAYLOAD)

        for f in (fleet, twin):
            for device in f.devices:
                mutate(device)

        # the post-mutation audit agrees with the serial twin — it
        # cannot have reused the stale pins...
        assert fleet.audit_fleet().fingerprints() == \
            twin.audit_fleet().fingerprints()
        # ...and indeed every session re-pinned under a new generation
        assert all(session_for(store).generation > gen
                   for store, gen in zip(fleet.stores, generations))
    finally:
        close_connection_pools()
        for w in workers:
            w.stop()


def _one_shot_server(behavior):
    """A TCP endpoint that serves exactly one connection with
    ``behavior(conn)`` (fault simulation)."""
    server = socket.socket()
    server.bind(("127.0.0.1", 0))
    server.listen(1)
    port = server.getsockname()[1]

    def run():
        conn, _addr = server.accept()
        try:
            behavior(conn)
        finally:
            conn.close()
            server.close()

    threading.Thread(target=run, daemon=True).start()
    return f"127.0.0.1:{port}"


def test_rpc_connection_dropped_before_reply():
    """Peer reads the request then drops the link: the task may or may
    not have run, so the client must raise — never retry silently."""
    from repro.parallel import RpcConnectionError
    from repro.parallel.remote import call_worker, recv_frame

    addr = _one_shot_server(lambda conn: recv_frame(conn))  # read, close
    with pytest.raises(RpcConnectionError, match="before replying"):
        call_worker(addr, ("run", partial(divmod, 1, 1)))


def test_rpc_connection_dropped_mid_frame():
    """Peer dies halfway through writing the reply frame: the partial
    frame must never be interpreted."""
    from repro.parallel import RpcConnectionError
    from repro.parallel.remote import call_worker, recv_frame

    def truncate_reply(conn):
        recv_frame(conn)  # consume the request
        conn.sendall(b"SRPC" + (4096).to_bytes(8, "big") + b"stub")

    addr = _one_shot_server(truncate_reply)
    with pytest.raises(RpcConnectionError, match="cut short"):
        call_worker(addr, ("run", partial(divmod, 1, 1)))


def test_rpc_member_exception_propagates_with_remote_context():
    """A member raising inside a pass re-raises the *original*
    exception at the caller, chained to a RemoteTaskError naming the
    worker and carrying the remote traceback; the pool stays usable."""
    from repro.parallel import RemoteTaskError, close_connection_pools, \
        spawn_local_worker

    worker = spawn_local_worker()
    try:
        fleet = api.FleetStore.create(2, total_blocks=192, seed=13)
        paths = [f"/e{i}" for i in range(4)]
        for path in paths:
            fleet.put(path, b"x" * 40)
        fleet.seal_many(paths[:1])  # serial: now /e0 is immutable
        with repro.engine(executor="rpc", fleet_hosts=(worker.address,)):
            with pytest.raises(ImmutableFileError) as excinfo:
                fleet.seal_many(paths)  # /e0 re-sealed inside the pass
            cause = excinfo.value.__cause__
            assert isinstance(cause, RemoteTaskError)
            assert cause.host == worker.address
            assert "remote traceback" in str(cause)
            # pool reusable, members consistent: a clean pass succeeds
            receipts = fleet.seal_many(paths[1:])
            assert [r.path for r in receipts] == paths[1:]
            assert fleet.audit().clean
    finally:
        worker.stop()
        close_connection_pools()


def test_process_pool_worker_killed_mid_pass():
    """A process-pool worker dying mid-task raises BrokenProcessPool
    and the cached executor rebuilds its pool for the next pass."""
    from concurrent.futures.process import BrokenProcessPool

    from repro.parallel import ProcessExecutor

    executor = ProcessExecutor(max_workers=2)
    try:
        with pytest.raises(BrokenProcessPool):
            executor.run([partial(os._exit, 1)])
        outcome = executor.run([partial(divmod, 9, 4)])  # pool rebuilt
        assert outcome.results == [(2, 1)]
    finally:
        executor.close()


def test_thread_executor_member_exception_keeps_members_consistent():
    """An in-pass exception under the thread executor propagates as
    the original error and folds no state back."""
    fleet = api.FleetStore.create(2, total_blocks=192, seed=17)
    paths = [f"/t{i}" for i in range(4)]
    for path in paths:
        fleet.put(path, b"y" * 40)
    fleet.seal_many(paths[:1])
    with repro.engine(executor="thread", max_workers=2):
        with pytest.raises(ImmutableFileError):
            fleet.seal_many(paths)
        assert fleet.audit().clean  # still consistent and auditable


# ---------------------------------------------------------------------------
# Failover, degraded passes, and the chaos soak (ISSUE 7)


def test_session_failover_with_retries_byte_identical():
    """Session mode with a retry budget: SIGKILL the host pinning
    member-0 mid-sequence — the very same pass re-pins the orphaned
    members on the survivor and completes byte-identical to the
    serial twin, RNG continuation included."""
    from repro.parallel import HashRing, RpcExecutor, \
        close_connection_pools, parse_hosts, reset_host_health, \
        spawn_local_worker
    from repro.workloads.fleet import FleetScheduler

    worker_a, worker_b = spawn_local_worker(), spawn_local_worker()
    hosts = parse_hosts([worker_a.address, worker_b.address])
    victim_addr = HashRing(hosts).lookup("member-0")
    victim, survivor = (worker_a, worker_b) \
        if worker_a.address == victim_addr else (worker_b, worker_a)
    reset_host_health()
    try:
        fleet = FleetScheduler.build(
            3, 32, switching_sigma=0.02,
            executor=RpcExecutor(list(hosts), sessions=True, retries=2))
        twin = FleetScheduler.build(3, 32, switching_sigma=0.02,
                                    executor="serial")
        for f in (fleet, twin):
            f.format_fleet()
            f.seal_fleet(lines_per_device=2, line_blocks=4)

        victim.kill()
        # no raise: the pass itself absorbs the dead host
        report = fleet.audit_fleet()
        assert report.fingerprints() == \
            twin.audit_fleet().fingerprints()
        assert not report.failures
        assert sum(report.retries.values()) >= 1
        # RNG continuation: the next pass still agrees
        assert fleet.fsck_fleet().fingerprints() == \
            twin.fsck_fleet().fingerprints()
    finally:
        survivor.stop()
        victim.stop()
        close_connection_pools()
        reset_host_health()


def _dead_host_splitting(live_addr, member_keys):
    """An address nothing listens on, chosen so the ring over
    ``(live, dead)`` places at least one member on each host (the
    live worker's port is dynamic, so the split must be searched)."""
    from repro.parallel import HashRing, parse_hosts

    for _ in range(64):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead = f"127.0.0.1:{probe.getsockname()[1]}"
        probe.close()
        hosts = parse_hosts([live_addr, dead])
        ring = HashRing(hosts)
        if {ring.lookup(k) for k in member_keys} == set(hosts):
            return dead, hosts
    raise AssertionError("no splitting dead host found in 64 draws")


@pytest.mark.parametrize("sessions", [False, True])
def test_degrade_mode_yields_partial_report(sessions):
    """on_failure='degrade' with an unreachable host and no retry
    budget: the pass completes partial — surviving members fold
    byte-identical to serial, dead-host members appear as typed
    MemberFailure records and their caller-held state is untouched."""
    from repro.parallel import HashRing, MemberFailure, RpcExecutor, \
        close_connection_pools, reset_host_health, spawn_local_worker
    from repro.workloads.fleet import FleetScheduler

    worker = spawn_local_worker()
    n = 4
    dead, hosts = _dead_host_splitting(
        worker.address, [f"member-{i}" for i in range(n)])
    lost = {i for i in range(n)
            if HashRing(hosts).lookup(f"member-{i}") == dead}
    assert lost and len(lost) < n  # the ring split the members
    reset_host_health()
    try:
        fleet = FleetScheduler.build(
            n, 32, switching_sigma=0.02,
            executor=RpcExecutor(list(hosts), sessions=sessions,
                                 retries=0, on_failure="degrade"))
        twin = FleetScheduler.build(n, 32, switching_sigma=0.02,
                                    executor="serial")
        before = _member_snapshots(fleet)
        report = fleet.format_fleet()
        reference = twin.format_fleet()

        assert report.degraded
        assert {f.index for f in report.failures} == lost
        for failure in report.failures:
            assert isinstance(failure, MemberFailure)
            assert failure.error_type == "RpcConnectionError"
            assert dead in failure.hosts_tried
        # surviving members folded byte-identical to the twin (the
        # partial report carries only *their* DeviceReports) ...
        fp = {d.device_index: d.fingerprint() for d in report.devices}
        ref = {d.device_index: d.fingerprint()
               for d in reference.devices}
        assert set(fp) == set(range(n)) - lost
        assert all(fp[i] == ref[i] for i in fp)
        # ... and failed members folded *nothing*
        after = _member_snapshots(fleet)
        assert all(after[i] == before[i] for i in lost)
    finally:
        worker.stop()
        close_connection_pools()
        reset_host_health()


def test_fleetstore_degrade_member_exception_and_audit():
    """FleetStore surface under degrade: a deterministic member error
    (re-sealing a sealed object) becomes a MemberFailure receipt for
    exactly the affected paths — never retried — and a degraded audit
    against a dead host reports per-member fs_errors instead of
    claiming a clean store."""
    from repro.parallel import MemberFailure, close_connection_pools, \
        reset_host_health, spawn_local_worker

    worker = spawn_local_worker()
    dead, _hosts = _dead_host_splitting(
        worker.address, ["member-0", "member-1"])
    reset_host_health()
    try:
        fleet = api.FleetStore.create(2, total_blocks=192, seed=23)
        paths = [f"/d{i}" for i in range(4)]
        for path in paths:
            fleet.put(path, b"z" * 40)
        fleet.seal_many(paths[:1])  # serial: /d0 now immutable
        with repro.engine(executor="rpc", fleet_hosts=(worker.address,),
                          fleet_on_failure="degrade"):
            receipts = fleet.seal_many(paths)
        failed = [r for r in receipts if isinstance(r, MemberFailure)]
        sealed = [r for r in receipts if not isinstance(r, MemberFailure)]
        assert failed and sealed
        assert all(f.error_type == "ImmutableFileError" for f in failed)
        assert all(f.attempts == 1 for f in failed)  # never retried
        assert fleet.last_op is not None and fleet.last_op.degraded
        # the healthy members really did seal: a serial audit is clean
        assert fleet.audit().clean

        # now audit through a dead host in degrade mode: loud partial
        with repro.engine(executor="rpc",
                          fleet_hosts=(worker.address, dead),
                          fleet_on_failure="degrade"):
            degraded = fleet.audit()
        assert not degraded.clean
        assert any("member audit failed" in e and e.startswith("m")
                   for e in degraded.fs_errors)
    finally:
        worker.stop()
        close_connection_pools()
        reset_host_health()


def test_executor_degrade_member_exception_keeps_slot():
    """Executor-level degrade: a task raising remotely occupies its
    results slot with a MemberFailure (error preserved by type and
    message) while other tasks' results come back normally."""
    from repro.parallel import MemberFailure, RpcExecutor, \
        close_connection_pools, spawn_local_worker

    worker = spawn_local_worker()
    try:
        executor = RpcExecutor([worker.address], on_failure="degrade")
        outcome = executor.run([partial(divmod, 9, 4),
                                partial(int, "nope")])
        assert outcome.results[0] == (2, 1)
        failure = outcome.results[1]
        assert isinstance(failure, MemberFailure)
        assert failure.index == 1
        assert failure.error_type == "ValueError"
        assert "nope" in failure.message
        assert not failure.timed_out
        assert outcome.failures == [failure]
    finally:
        worker.stop()
        close_connection_pools()


def test_spawn_local_worker_kills_child_on_startup_ping_failure(
        monkeypatch):
    """If the freshly spawned worker announces its address but never
    answers the startup ping, spawn_local_worker must not leak the
    child: it kills the process and raises."""
    import re

    from repro.parallel import RpcConnectionError
    from repro.parallel import remote as remote_mod

    real_ping = remote_mod.ping

    def never_answers(addr, *, timeout=5.0, secret=None):
        raise RpcConnectionError(f"injected: no pong from {addr}")

    monkeypatch.setattr(remote_mod, "ping", never_answers)
    with pytest.raises(RpcConnectionError,
                       match="never answered the startup ping") as err:
        remote_mod.spawn_local_worker()
    address = re.search(r"at (\S+?:\d+) announced", str(err.value))
    assert address is not None
    monkeypatch.setattr(remote_mod, "ping", real_ping)
    # the child was killed: nothing listens on that address any more
    with pytest.raises(RpcConnectionError):
        real_ping(address.group(1), timeout=1.0)


def test_failover_replacement_is_minimal_and_deterministic():
    """Property: dropping one host from the ring re-places *only* the
    members that lived on it — survivors keep their placement — and
    the re-placement is a pure function of the surviving host set."""
    from hypothesis import given, settings
    from hypothesis import strategies as st

    from repro.parallel import HashRing

    @settings(max_examples=60, deadline=None)
    @given(n_hosts=st.integers(2, 6), n_members=st.integers(1, 32),
           drop=st.integers(0, 5))
    def check(n_hosts, n_members, drop):
        hosts = tuple(f"10.0.0.{i}:{7100 + i}" for i in range(n_hosts))
        members = [f"member-{i}" for i in range(n_members)]
        ring = HashRing(hosts)
        before = {m: ring.lookup(m) for m in members}
        victim = hosts[drop % n_hosts]
        survivors = tuple(h for h in hosts if h != victim)
        after = {m: HashRing(survivors).lookup(m) for m in members}
        for member, placed in before.items():
            if placed == victim:
                assert after[member] in survivors
            else:
                assert after[member] == placed  # minimal disruption
        # determinism: an independent rebuild places identically
        again = HashRing(tuple(reversed(survivors)))
        assert {m: again.lookup(m) for m in members} == after

    check()


def test_soak_tiny_run_is_clean():
    """A miniature trace-driven soak — two kills bracketing a restart,
    so whichever host the ring placed the members on gets killed at
    some point — must finish with zero invariant violations and a
    verified partial-fold probe."""
    from repro.workloads import SoakConfig, SoakFault, run_soak

    report = run_soak(SoakConfig(
        members=2, workers=2, ops=10, seed=31, total_blocks=192,
        checkpoint_every=5, retries=3, timeout=30.0,
        faults=(SoakFault(2, "kill", worker=0),
                SoakFault(5, "restart", worker=0),
                SoakFault(7, "kill", worker=1))))
    assert report.clean, report.violations
    assert report.ops_completed == 10
    assert report.kills == 2 and report.restarts == 1
    assert report.checkpoints >= 1
    assert report.audits_clean == report.checkpoints
    assert report.partial_fold_probe == "verified"
    payload = report.to_json()
    assert payload["clean"] is True
    assert payload["ops_per_second"] > 0


def test_soak_trajectory_appends_and_migrates(tmp_path):
    """BENCH_soak.json is a trajectory: runs append an ops/s series
    instead of overwriting, and a legacy single-run file becomes the
    first datapoint in place."""
    import json as _json

    from repro.workloads.soak import MAX_KEPT_RUNS, append_trajectory

    target = str(tmp_path / "BENCH_soak.json")
    legacy = {"bench": "soak", "ops_completed": 24,
              "wall_seconds": 8.0, "ops_per_second": 3.0,
              "kills": 2, "clean": True,
              "failover_retries": {"h:1": 5}}
    with open(target, "w") as handle:
        _json.dump(legacy, handle)

    run = {"bench": "soak", "ops_completed": 48, "wall_seconds": 10.0,
           "ops_per_second": 4.8, "kills": 2, "restarts": 1,
           "connection_drops": 1, "clean": True,
           "failover_retries": {"h:1": 2, "h:2": 1}}
    document = append_trajectory(target, run)
    assert [p["ops_per_second"] for p in document["trajectory"]] == \
        [3.0, 4.8]
    assert document["trajectory"][0]["failover_retries"] == 5
    assert document["latest"] == run

    # subsequent runs keep appending; full payloads stay bounded
    for i in range(MAX_KEPT_RUNS + 5):
        document = append_trajectory(
            target, dict(run, ops_per_second=5.0 + i))
    with open(target) as handle:
        on_disk = _json.load(handle)
    assert len(on_disk["trajectory"]) == 2 + MAX_KEPT_RUNS + 5
    assert len(on_disk["runs"]) == MAX_KEPT_RUNS
    assert on_disk["runs"][-1]["ops_per_second"] == \
        5.0 + MAX_KEPT_RUNS + 4
