"""Shard-parallel fleet locking: correctness under real threads.

Four layers:

* **MemberLockSet discipline** — exclusive mode excludes shard
  holders (and vice versa), footprints acquire in ascending member
  order, ``serialize=True`` turns the shared gate into the single
  global lock, ``grow()`` is exclusive-only;
* **deadlock freedom** — reverse-footprint ``seal_many`` batches
  ({0, 2} racing {2, 0}) and admin passes racing shard traffic must
  all join within a timeout;
* **byte-identity through FleetStore** — N threads hammering
  member-disjoint namespaces leave every member at the identical
  :func:`~repro.parallel.session.store_fingerprint` as a serialized
  twin, because the protocol's determinism contract is per member;
* **byte-identity through the live gateway** — the same property
  with real sockets and ``ThreadingHTTPServer`` threads, plus an
  overlapping-namespace hammer whose invariant is weaker (every
  sealed object verifies INTACT, the audit is clean) because
  same-member interleaving legitimately reorders the RNG stream.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List

import pytest

from repro.api.fleet import FleetStore
from repro.api.store import StoreConfig
from repro.device.sero import VerifyStatus
from repro.errors import ConfigurationError
from repro.gateway import GatewayApp, GatewayClient, GatewayServer, TokenTable, confine
from repro.parallel import MemberLockSet
from repro.parallel.session import store_fingerprint

CONFIG = StoreConfig(total_blocks=256, audit_log=True)
SPEC = "root-token=admin;acme-rw=acme:rw"
JOIN_TIMEOUT = 30.0


def _run_threads(targets) -> None:
    """Start, join with a timeout, and re-raise worker exceptions —
    a hung thread is a failed (deadlocked) test, not a hung suite."""
    errors: List[BaseException] = []

    def wrap(fn):
        def run():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 — reported below
                errors.append(exc)
        return run

    threads = [threading.Thread(target=wrap(fn), daemon=True)
               for fn in targets]
    for t in threads:
        t.start()
    for t in threads:
        t.join(JOIN_TIMEOUT)
    assert not any(t.is_alive() for t in threads), \
        "worker threads did not finish: deadlock"
    if errors:
        raise errors[0]


def _pin_paths(fleet: FleetStore, per_member: int,
               prefix: str = "/obj") -> Dict[int, List[str]]:
    """Probe the hash ring for ``per_member`` paths routed to each
    member, so concurrent threads can own disjoint member footprints."""
    pinned: Dict[int, List[str]] = {i: [] for i in range(len(fleet.members))}
    i = 0
    while any(len(paths) < per_member for paths in pinned.values()):
        path = f"{prefix}/{i}"
        member = fleet.route(path)
        if len(pinned[member]) < per_member:
            pinned[member].append(path)
        i += 1
        assert i < 10_000, "ring never covered every member"
    return pinned


# -- MemberLockSet discipline ---------------------------------------------------


def test_exclusive_excludes_member_holders():
    locks = MemberLockSet(3)
    order: List[str] = []
    entered = threading.Event()
    release = threading.Event()

    def shard():
        with locks.member(1):
            order.append("shard-in")
            entered.set()
            release.wait(JOIN_TIMEOUT)
            order.append("shard-out")

    def admin():
        entered.wait(JOIN_TIMEOUT)
        with locks.exclusive():
            order.append("admin")

    t1 = threading.Thread(target=shard, daemon=True)
    t2 = threading.Thread(target=admin, daemon=True)
    t1.start()
    t2.start()
    entered.wait(JOIN_TIMEOUT)
    time.sleep(0.05)  # give the admin thread a chance to (wrongly) run
    assert order == ["shard-in"]  # exclusive waits for the shard op
    release.set()
    t1.join(JOIN_TIMEOUT)
    t2.join(JOIN_TIMEOUT)
    assert order == ["shard-in", "shard-out", "admin"]


def test_waiting_exclusive_blocks_new_shard_entrants():
    locks = MemberLockSet(2)
    in_shard = threading.Event()
    release_shard = threading.Event()
    admin_done = threading.Event()
    late_ran = threading.Event()

    def shard():
        with locks.shared():
            in_shard.set()
            release_shard.wait(JOIN_TIMEOUT)

    def admin():
        in_shard.wait(JOIN_TIMEOUT)
        with locks.exclusive():
            admin_done.set()

    def late_shard():
        in_shard.wait(JOIN_TIMEOUT)
        time.sleep(0.05)  # let the admin thread start waiting first
        with locks.shared():
            late_ran.set()
        # writer preference: by the time a late reader gets in, the
        # waiting exclusive pass must already have run
        assert admin_done.is_set()

    threads = [threading.Thread(target=fn, daemon=True)
               for fn in (shard, admin, late_shard)]
    for t in threads:
        t.start()
    in_shard.wait(JOIN_TIMEOUT)
    time.sleep(0.1)
    assert not admin_done.is_set() and not late_ran.is_set()
    release_shard.set()
    for t in threads:
        t.join(JOIN_TIMEOUT)
    assert admin_done.is_set() and late_ran.is_set()


def test_ascending_acquisition_order():
    locks = MemberLockSet(5)
    with locks.shared():
        order = locks.acquire_ascending([3, 0, 4, 0, 3])
        assert order == (0, 3, 4)
        locks.release_descending(order)


def test_serialize_mode_turns_shared_into_exclusive():
    locks = MemberLockSet(3, serialize=True)
    overlap = 0
    inside = 0
    guard = threading.Lock()

    def worker():
        nonlocal overlap, inside
        for _ in range(20):
            with locks.shared():
                with guard:
                    inside += 1
                    if inside > 1:
                        overlap += 1
                time.sleep(0.0005)
                with guard:
                    inside -= 1

    _run_threads([worker] * 4)
    assert overlap == 0


def test_grow_requires_exclusive_mode():
    locks = MemberLockSet(2)
    with pytest.raises(RuntimeError):
        locks.grow()
    with locks.exclusive():
        assert locks.grow() == 2
    assert locks.count == 3


def test_exclusive_is_reentrant_and_admits_own_shard_helpers():
    locks = MemberLockSet(2)
    with locks.exclusive():
        with locks.exclusive():       # audit calling format, say
            with locks.member(1):     # and a shard-grained helper
                pass
    # fully released: another thread can take it immediately
    ok = threading.Event()

    def other():
        with locks.exclusive():
            ok.set()

    _run_threads([other])
    assert ok.is_set()


# -- deadlock freedom -----------------------------------------------------------


def test_reverse_footprint_seal_many_does_not_deadlock():
    for _ in range(5):  # racing repeatedly to actually collide
        fleet = FleetStore.create(3, CONFIG)
        pinned = _pin_paths(fleet, 2)
        batch_a = [pinned[0][0], pinned[2][0]]   # footprint {0, 2}
        batch_b = [pinned[2][1], pinned[0][1]]   # footprint {2, 0}
        for path in batch_a + batch_b:
            fleet.put(path, b"x" * 64, make_parents=True)
        start = threading.Barrier(2)

        def seal(batch, barrier=start, target=fleet):
            def run():
                barrier.wait(JOIN_TIMEOUT)
                target.seal_many(batch)
            return run

        _run_threads([seal(batch_a), seal(batch_b)])
        for path in batch_a + batch_b:
            assert fleet.verify(path).status is VerifyStatus.INTACT


def test_admin_passes_race_shard_traffic_without_deadlock():
    fleet = FleetStore.create(3, CONFIG)
    pinned = _pin_paths(fleet, 4)

    def tenant(member: int):
        def run():
            for path in pinned[member]:
                fleet.put(path, bytes([member + 1]) * 48, make_parents=True)
                fleet.seal(path)
                fleet.verify(path)
        return run

    def admin():
        for _ in range(3):
            fleet.audit()

    _run_threads([tenant(0), tenant(1), tenant(2), admin])
    report = fleet.audit(deep=True)
    assert all(r.status is VerifyStatus.INTACT for r in report.reports)


# -- byte-identity through FleetStore -------------------------------------------


def _hammer_member(fleet: FleetStore, paths: List[str],
                   payload: bytes) -> None:
    for path in paths:
        fleet.put(path, payload, make_parents=True)
    fleet.seal_many(paths)
    for path in paths:
        assert fleet.get(path) == payload
        report = fleet.verify(path)
        assert report.status is VerifyStatus.INTACT


def test_disjoint_member_hammer_matches_serialized_twin():
    fleet = FleetStore.create(3, CONFIG, lock_mode="shard")
    twin = FleetStore.create(3, CONFIG, lock_mode="single")
    pinned = _pin_paths(fleet, 3)
    payloads = {m: bytes([m + 1]) * 96 for m in pinned}

    _run_threads([
        (lambda m=m: _hammer_member(fleet, pinned[m], payloads[m]))
        for m in pinned])
    for m in pinned:  # the twin runs the same per-member sequences serially
        _hammer_member(twin, pinned[m], payloads[m])

    assert [store_fingerprint(s) for s in fleet.members] == \
        [store_fingerprint(s) for s in twin.members]


def test_lock_mode_validation_and_describe():
    with pytest.raises(ConfigurationError):
        FleetStore.create(2, CONFIG, lock_mode="banana")
    fleet = FleetStore.create(2, CONFIG, lock_mode="single")
    assert fleet.describe()["lock_mode"] == "single"


# -- byte-identity through the live gateway -------------------------------------


@pytest.fixture()
def gateway_stack():
    fleet = FleetStore.create(3, CONFIG)
    twin = FleetStore.create(3, CONFIG)
    app = GatewayApp(fleet, TokenTable.from_spec(SPEC))
    assert app.lock_mode == "shard"
    with GatewayServer(app) as server:
        yield server, fleet, twin


def test_gateway_disjoint_hammer_matches_serialized_twin(gateway_stack):
    server, fleet, twin = gateway_stack
    # pin tenant-relative names so each thread owns one member
    pinned: Dict[int, List[str]] = {i: [] for i in range(3)}
    i = 0
    while any(len(v) < 3 for v in pinned.values()):
        name = f"/ledger/{i}"
        member = fleet.route(confine("acme", name))
        if len(pinned[member]) < 3:
            pinned[member].append(name)
        i += 1

    def worker(member: int):
        def run():
            client = GatewayClient(server.address, "acme-rw",
                                   tenant="acme")
            with client:
                payload = bytes([member + 1]) * 80
                for name in pinned[member]:
                    client.put(name, payload)
                client.seal_many(pinned[member], timestamp=99)
                for name in pinned[member]:
                    assert client.get(name) == payload
        return run

    _run_threads([worker(m) for m in pinned])
    for m in pinned:  # replay each thread's exact op sequence serially
        payload = bytes([m + 1]) * 80
        for name in pinned[m]:
            twin.put(confine("acme", name), payload, make_parents=True)
        twin.seal_many([confine("acme", n) for n in pinned[m]],
                       timestamp=99)
        for name in pinned[m]:  # reads advance device state too
            assert twin.get(confine("acme", name)) == payload

    assert [store_fingerprint(s) for s in fleet.members] == \
        [store_fingerprint(s) for s in twin.members]


def test_gateway_overlapping_hammer_keeps_invariants(gateway_stack):
    server, fleet, _twin = gateway_stack
    names = [f"/shared/{i}" for i in range(12)]

    def worker(offset: int):
        def run():
            client = GatewayClient(server.address, "acme-rw",
                                   tenant="acme")
            with client:
                for i in range(offset, len(names), 3):
                    client.put(names[i], b"v" * (40 + i))
                    client.seal(names[i])
        return run

    _run_threads([worker(0), worker(1), worker(2)])
    admin = GatewayClient(server.address, "root-token")
    with admin:
        report = admin.audit(deep=True)
    assert all(r.status is VerifyStatus.INTACT for r in report.reports)
    client = GatewayClient(server.address, "acme-rw", tenant="acme")
    with client:
        for i, name in enumerate(names):
            verdict = client.verify(name)
            assert verdict.status is VerifyStatus.INTACT
            assert client.get(name) == b"v" * (40 + i)


def test_gateway_single_lock_mode_still_serves(gateway_stack):
    server, fleet, _twin = gateway_stack
    app = GatewayApp(fleet, TokenTable.from_spec(SPEC),
                     lock_mode="single")
    with GatewayServer(app) as single:
        client = GatewayClient(single.address, "acme-rw", tenant="acme")
        with client:
            client.put("/solo", b"data")
            receipt = client.seal("/solo")
            assert receipt.path == confine("acme", "/solo")


def test_gateway_rejects_unknown_lock_mode():
    fleet = FleetStore.create(2, CONFIG)
    with pytest.raises(ConfigurationError):
        GatewayApp(fleet, TokenTable.from_spec(SPEC),
                   lock_mode="banana")


# -- typed member verdicts under both lock modes --------------------------------


def test_member_records_identical_across_lock_modes():
    """A fleet audit exposes the same typed per-member verdict
    records whether members are locked per-shard or behind the
    single fleet lock, with member-local (unprefixed) labels."""
    shard = FleetStore.create(3, CONFIG, lock_mode="shard")
    single = FleetStore.create(3, CONFIG, lock_mode="single")
    pinned = _pin_paths(shard, 2)
    for fleet in (shard, single):
        for member, paths in pinned.items():
            for path in paths:
                fleet.put(path, bytes([member + 1]) * 40,
                          make_parents=True)
        fleet.seal_many([p for paths in pinned.values()
                         for p in paths])

    reports = {mode: fleet.audit()
               for mode, fleet in (("shard", shard),
                                   ("single", single))}
    assert reports["shard"] == reports["single"]
    records = reports["shard"].member_records
    assert {r.member for r in records} == set(pinned)
    for record in records:
        # member-local: the merged "m<i>:" prefix never leaks in
        assert not record.report.label.startswith(
            f"m{record.member}:")
        assert record.report.intact


def test_index_feed_identical_across_lock_modes():
    """The evidence index sees the same journal regardless of lock
    mode: same ops in, byte-identical canonical state out."""
    from repro.search import EvidenceIndex

    states = {}
    for mode in ("shard", "single"):
        fleet = FleetStore.create(3, CONFIG, lock_mode=mode)
        index = EvidenceIndex()
        fleet.attach_indexer(index)
        pinned = _pin_paths(fleet, 2)
        for member, paths in pinned.items():
            for path in paths:
                fleet.put(path, bytes([member + 1]) * 40,
                          make_parents=True)
        fleet.seal_many([p for paths in pinned.values()
                         for p in paths])
        fleet.audit()
        index.verify_journal()
        assert index.rebuild().canonical_bytes() == \
            index.canonical_bytes()
        states[mode] = index.canonical_bytes()
    assert states["shard"] == states["single"]
