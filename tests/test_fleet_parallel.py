"""The sharded fleet execution layer.

Three layers under test:

* **executors** (:mod:`repro.parallel`) — serial/thread/process
  dispatch must produce byte-identical per-member results, the
  registry must be policy-selectable, and ``REPRO_FLEET_EXECUTOR``
  must be read lazily at dispatch time;
* **scheduler** (:class:`repro.workloads.fleet.FleetScheduler`) — the
  four fleet passes on top of the executors, with per-worker
  reporting;
* **fleet store** (:class:`repro.api.fleet.FleetStore`) — the
  consistent-hash shard router: deterministic routing, bounded
  remapping under growth, and store-surface equivalence.

Plus the snapshot transport the process executor rides on: the compact
:class:`~repro.medium.medium.PatternedMedium` pickle must round-trip
state *exactly* (arrays, RNG position, registries).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

import repro
import repro.api as api
from repro.api.fleet import FleetStore, coerce_member
from repro.api.policy import ExecutionPolicy
from repro.api.store import TamperEvidentStore
from repro.device.sero import SERODevice
from repro.errors import FileNotFoundError_
from repro.parallel import (
    ExecutorSpec,
    HashRing,
    SerialExecutor,
    ThreadExecutor,
    available_executors,
    make_executor,
    register_executor,
    resolve_fleet_executor,
    unregister_executor,
)
from repro.workloads.fleet import DeviceReport, FleetReport, FleetScheduler

EXECUTORS = ("serial", "thread", "process")


@pytest.fixture(autouse=True)
def _no_installed_policy():
    yield
    api.set_policy(None)


def _sealed_fleet(executor=None, n=3, blocks=32):
    fleet = FleetScheduler.build(n, blocks, switching_sigma=0.02,
                                 executor=executor)
    fleet.format_fleet()
    fleet.seal_fleet(lines_per_device=2, line_blocks=4)
    return fleet


# -- satellite: blocks_per_second must not be inf -----------------------------


def test_blocks_per_second_zero_wall():
    report = FleetReport(operation="audit",
                         devices=[DeviceReport(device_index=0, blocks=64)])
    report.wall_seconds = 0.0
    assert report.blocks_per_second == 0.0
    report.wall_seconds = -1.0
    assert report.blocks_per_second == 0.0
    report.wall_seconds = 2.0
    assert report.blocks_per_second == 32.0


# -- executor registry ---------------------------------------------------------


def test_builtin_executors_registered():
    for name in EXECUTORS:
        assert name in available_executors()


def test_builtin_executors_protected():
    for name in EXECUTORS:
        with pytest.raises(ValueError):
            unregister_executor(name)


def test_register_executor_requires_lowercase_name():
    # the env layer matches case-insensitively, so a mixed-case
    # registration would be unreachable through REPRO_FLEET_EXECUTOR
    with pytest.raises(ValueError, match="lowercase"):
        register_executor(ExecutorSpec("RpcExec", SerialExecutor))


def test_ungrown_fleet_seal_many_routes_without_reads():
    fleet = FleetStore.create(2, total_blocks=192, seed=21)
    paths = [f"/s{i}" for i in range(12)]
    for path in paths:
        fleet.put(path, b"x" * 40)
    # seal only one member's paths; the other member must stay silent
    member0_paths = [p for p in paths if fleet.route(p) == 0]
    assert member0_paths  # 12 keys over 2 members: both populated
    before = dict(fleet.members[1].device.medium.counters)
    fleet.seal_many(member0_paths)
    assert dict(fleet.members[1].device.medium.counters) == before


def test_register_custom_executor_and_policy_validation():
    spec = ExecutorSpec("bespoke", SerialExecutor, "test dispatch")
    register_executor(spec)
    try:
        assert "bespoke" in available_executors()
        ExecutionPolicy(executor="bespoke")  # validates
        assert isinstance(make_executor("bespoke"), SerialExecutor)
    finally:
        unregister_executor("bespoke")
    with pytest.raises(ValueError):
        ExecutionPolicy(executor="bespoke")


def test_policy_rejects_bad_executor_and_workers():
    with pytest.raises(ValueError):
        ExecutionPolicy(executor="no-such-dispatch")
    with pytest.raises(ValueError):
        ExecutionPolicy(max_workers=0)


def test_resolve_fleet_executor_accepts_instance():
    instance = ThreadExecutor(max_workers=2)
    assert resolve_fleet_executor(instance) is instance


# -- resolution chain ----------------------------------------------------------


def test_executor_resolution_layers(monkeypatch):
    monkeypatch.delenv(api.EXECUTOR_ENV_VAR, raising=False)
    d = api.describe_policy()
    assert (d["executor"], d["executor_source"]) == ("serial", "default")

    monkeypatch.setenv(api.EXECUTOR_ENV_VAR, "thread")
    d = api.describe_policy()
    assert (d["executor"], d["executor_source"]) == ("thread", "env")

    api.set_policy(ExecutionPolicy(executor="process", max_workers=2))
    d = api.describe_policy()
    assert (d["executor"], d["executor_source"]) == ("process", "policy")
    assert (d["max_workers"], d["max_workers_source"]) == (2, "policy")

    with repro.engine(executor="serial", max_workers=1):
        d = api.describe_policy()
        assert (d["executor"], d["executor_source"]) == ("serial", "context")
        assert (d["max_workers"], d["max_workers_source"]) == (1, "context")

    assert api.resolve_executor_name("thread") == ("thread", "explicit")


def test_unknown_env_executor_is_ignored(monkeypatch):
    monkeypatch.setenv(api.EXECUTOR_ENV_VAR, "warp-drive")
    assert api.resolve_executor_name() == ("serial", "default")


def test_max_workers_env(monkeypatch):
    monkeypatch.setenv(api.FLEET_WORKERS_ENV_VAR, "3")
    assert api.resolve_max_workers() == (3, "env")
    monkeypatch.setenv(api.FLEET_WORKERS_ENV_VAR, "junk")
    assert api.resolve_max_workers() == (None, "default")


def test_env_executor_read_lazily_after_scheduler_built(monkeypatch):
    """Exporting REPRO_FLEET_EXECUTOR after import *and* after the
    scheduler exists must still select the executor at dispatch."""
    monkeypatch.delenv(api.EXECUTOR_ENV_VAR, raising=False)
    fleet = _sealed_fleet(n=2)
    assert fleet.audit_fleet().executor == "serial"
    monkeypatch.setenv(api.EXECUTOR_ENV_VAR, "thread")
    assert fleet.audit_fleet().executor == "thread"


def test_engine_context_selects_executor():
    fleet = _sealed_fleet(n=2)
    with repro.engine(executor="thread", max_workers=2):
        report = fleet.audit_fleet()
    assert report.executor == "thread"
    assert report.workers == 2
    assert fleet.audit_fleet().executor == "serial"


def test_thread_executor_propagates_engine_context():
    """A pass scoped to the scalar engine stays scalar on every
    worker thread (contextvars travel with the task)."""
    from repro.api.policy import resolve_vectorized

    seen = []

    def probe():
        seen.append(resolve_vectorized())
        return None, None

    with repro.engine("scalar"):
        ThreadExecutor(max_workers=2).run([probe] * 4)
    assert seen == [False] * 4


# -- executor equivalence ------------------------------------------------------


def test_fleet_passes_byte_identical_across_executors():
    """format/seal/audit reports must be byte-identical whichever
    executor dispatched them (the acceptance-criteria equivalence)."""
    reports = {}
    for name in EXECUTORS:
        fleet = FleetScheduler.build(3, 32, switching_sigma=0.02,
                                     executor=name, max_workers=2)
        formatted = fleet.format_fleet()
        sealed = fleet.seal_fleet(lines_per_device=2, line_blocks=4)
        audited = fleet.audit_fleet()
        assert formatted.executor == name
        reports[name] = (formatted.fingerprints(), sealed.fingerprints(),
                         audited.fingerprints())
    assert reports["serial"] == reports["thread"] == reports["process"]
    # the seal fingerprints carry real content: per-line hashes
    assert any(r[4] for r in reports["serial"][1])  # lines_sealed > 0


def test_process_executor_reinstalls_mutated_state():
    """After a process-dispatched pass the scheduler's members carry
    the worker-side state (RNG advanced, lines registered) exactly as
    a serial pass would have left them."""
    serial = _sealed_fleet(executor="serial")
    procs = _sealed_fleet(executor="process")
    for s_dev, p_dev in zip(serial.devices, procs.devices):
        assert s_dev.heated_lines == p_dev.heated_lines
        assert np.array_equal(s_dev.medium._mag, p_dev.medium._mag)
        assert np.array_equal(s_dev.medium._sharpness, p_dev.medium._sharpness)
        assert s_dev.medium._rng.bit_generator.state == \
            p_dev.medium._rng.bit_generator.state
    # and the *next* pass (serial on both) still agrees byte for byte
    assert serial.audit_fleet().fingerprints() == \
        procs.audit_fleet().fingerprints()


def test_fsck_fleet_device_grain_and_fs_members():
    fleet = _sealed_fleet(n=2)
    report = fleet.fsck_fleet()
    assert report.operation == "fsck"
    assert report.lines_verified == 4
    assert report.fs_errors == 0

    store = TamperEvidentStore.create(total_blocks=128)
    store.put("/a", b"x" * 100)
    store.seal("/a")
    mixed = FleetScheduler([store])
    fs_report = mixed.fsck_fleet()
    assert fs_report.fs_errors == 0
    assert fs_report.devices[0].lines_verified >= 1


def test_worker_wall_breakdown_present():
    fleet = _sealed_fleet(n=3)
    report = fleet.audit_fleet()
    assert report.executor == "serial"
    assert sum(w.tasks for w in report.worker_walls) == 3
    assert report.simulated_makespan_seconds == \
        pytest.approx(report.device_seconds)
    with repro.engine(executor="thread", max_workers=3):
        parallel_report = fleet.audit_fleet()
    assert sum(w.tasks for w in parallel_report.worker_walls) == 3
    # concurrent workers: the rack finishes before the summed device time
    if parallel_report.workers > 1 and \
            len({d.worker for d in parallel_report.devices}) > 1:
        assert parallel_report.simulated_makespan_seconds < \
            parallel_report.device_seconds


# -- snapshot transport --------------------------------------------------------


def test_medium_snapshot_pickle_roundtrip_exact():
    fleet = _sealed_fleet(n=1, blocks=32)
    device = fleet.devices[0]
    clone = pickle.loads(pickle.dumps(device, pickle.HIGHEST_PROTOCOL))
    assert np.array_equal(clone.medium._mag, device.medium._mag)
    assert np.array_equal(clone.medium._sharpness, device.medium._sharpness)
    assert np.array_equal(clone.medium._k_scale, device.medium._k_scale)
    assert clone.medium.counters == device.medium.counters
    assert clone.bad_blocks == device.bad_blocks
    assert clone.heated_lines == device.heated_lines
    assert clone.account.elapsed == device.account.elapsed
    # RNG continuation: identical verdict sequences from here on
    a = [(r.status, r.start) for r in device.verify_all()]
    b = [(r.status, r.start) for r in clone.verify_all()]
    assert a == b
    assert clone.medium._rng.bit_generator.state == \
        device.medium._rng.bit_generator.state


def test_snapshot_pickle_is_compact():
    device = SERODevice.create(64)
    raw_bytes = device.medium._mag.nbytes + device.medium._sharpness.nbytes
    assert len(pickle.dumps(device, pickle.HIGHEST_PROTOCOL)) < raw_bytes / 4


def test_device_clone_is_independent():
    fleet = _sealed_fleet(n=1, blocks=32)
    device = fleet.devices[0]
    clone = device.clone()
    clone.verify_all()
    # the original's RNG did not move
    assert clone.medium._rng.bit_generator.state != \
        device.medium._rng.bit_generator.state or \
        device.medium.heated_count() == 0


# -- shared member coercion ----------------------------------------------------


def test_coerce_member_shared_by_scheduler_and_fleet_store():
    device = SERODevice.create(16)
    with pytest.warns(DeprecationWarning):
        scheduler = FleetScheduler([device])
    assert scheduler.devices == [device]
    with pytest.warns(DeprecationWarning):
        fleet = FleetStore([SERODevice.create(16)])
    assert fleet.members[0].fs is None
    with pytest.raises(TypeError):
        coerce_member("not a member")


# -- hash ring -----------------------------------------------------------------


def test_ring_deterministic_and_complete():
    ring = HashRing([f"m{i}" for i in range(4)])
    keys = [f"/obj-{i}" for i in range(200)]
    first = [ring.lookup(k) for k in keys]
    again = [ring.lookup(k) for k in keys]
    assert first == again
    fresh = HashRing([f"m{i}" for i in range(4)])
    assert [fresh.lookup(k) for k in keys] == first
    spread = ring.distribution(keys)
    assert set(spread) == {"m0", "m1", "m2", "m3"}
    assert all(count > 0 for count in spread.values())


def test_ring_rebalance_stability():
    """Adding one node to n remaps ~1/(n+1) of keys and never moves a
    key between two *old* nodes."""
    keys = [f"/obj-{i}" for i in range(1000)]
    ring = HashRing([f"m{i}" for i in range(8)])
    before = {k: ring.lookup(k) for k in keys}
    ring.add_node("m8")
    after = {k: ring.lookup(k) for k in keys}
    moved = {k for k in keys if before[k] != after[k]}
    assert all(after[k] == "m8" for k in moved)
    assert len(moved) < len(keys) * 2 / 9  # ~1/9 expected, 2x headroom
    ring.remove_node("m8")
    assert {k: ring.lookup(k) for k in keys} == before


def test_ring_errors():
    ring = HashRing(["a"])
    with pytest.raises(ValueError):
        ring.add_node("a")
    with pytest.raises(ValueError):
        ring.remove_node("zz")
    with pytest.raises(ValueError):
        HashRing([], replicas=0)
    with pytest.raises(ValueError):
        HashRing().lookup("key")


# -- FleetStore ----------------------------------------------------------------


@pytest.fixture(scope="module")
def rack():
    fleet = FleetStore.create(3, total_blocks=192, seed=41)
    paths = [f"/doc-{i}" for i in range(12)]
    for path in paths:
        fleet.put(path, path.encode() * 8)
    return fleet, paths


def test_fleet_store_routing_deterministic(rack):
    fleet, paths = rack
    routes = [fleet.route(p) for p in paths]
    assert routes == [fleet.route(p) for p in paths]
    assert set(routes) == {0, 1, 2}  # 12 keys spread over all members
    for path in paths:
        assert fleet.member_for(path).info(path).path == path
        assert fleet.get(path) == path.encode() * 8


def test_fleet_store_seal_verify_audit(rack):
    fleet, paths = rack
    receipts = fleet.seal_many(paths[:6])
    assert [r.path for r in receipts] == paths[:6]
    for path in paths[:6]:
        assert fleet.verify(path).intact
    report = fleet.audit()
    assert report.lines_verified >= 6
    assert report.clean
    # member-tagged labels: a verdict names the member it came from
    assert all(r.label and r.label.partition(":")[0].startswith("m")
               for r in report.reports)


def test_fleet_store_audit_equivalent_across_executors(rack):
    fleet, _paths = rack
    serial = fleet.audit()
    with repro.engine(executor="thread", max_workers=2):
        threaded = fleet.audit()
    with repro.engine(executor="process", max_workers=2):
        processed = fleet.audit()
    key = lambda rep: [(r.status, r.line_start, r.label, r.stored_hash)
                       for r in rep.reports]
    assert key(serial) == key(threaded) == key(processed)
    assert fleet.last_op.executor == "process"
    assert sum(w.tasks for w in fleet.last_op.worker_walls) == 3


def test_fleet_store_growth_keeps_objects_reachable(rack):
    fleet, paths = rack
    before = {p: fleet.route(p) for p in paths}
    index = fleet.add_member(TamperEvidentStore.create(total_blocks=192))
    assert index == 3
    after = {p: fleet.route(p) for p in paths}
    moved = [p for p in paths if before[p] != after[p]]
    assert all(after[p] == index for p in moved)
    for path in paths:  # fallback locate covers remapped keys
        assert fleet.get(path) == path.encode() * 8
    with pytest.raises(FileNotFoundError_):
        fleet.get("/never-stored")


def test_fleet_store_sharded_evidence_and_archive():
    fleet = FleetStore.create(2, total_blocks=192, archive_blocks=64,
                              seed=90)
    export = fleet.export_evidence(
        "case-7", {f"exhibit-{i}": bytes([i]) * 64 for i in range(6)})
    assert export.intact
    assert len(export.items) == 6
    assert all(sub.manifest is not None for sub in export.exports)
    receipt = fleet.archive("snap", b"archive me" * 50)
    assert fleet.retrieve("snap") == b"archive me" * 50
    assert receipt.root_score


def test_fleet_store_create_distinct_seeds():
    fleet = FleetStore.create(2, total_blocks=64, seed=5)
    media = [m.device.medium for m in fleet.members]
    assert media[0].config.seed == 5
    assert media[1].config.seed == 6


def test_fleet_store_needs_members():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        FleetStore([])


# -- review regressions --------------------------------------------------------


def test_seal_fleet_refuses_fs_backed_members():
    """A raw rack seal over an fs member would heat the superblock."""
    from repro.errors import ConfigurationError

    store = TamperEvidentStore.create(total_blocks=128)
    mixed = FleetScheduler([store])
    with pytest.raises(ConfigurationError, match="file system"):
        mixed.seal_fleet(lines_per_device=1, line_blocks=2)
    assert not store.device.heated_lines  # nothing was touched


def test_mixed_fleet_routes_objects_to_fs_members():
    """Device-grain members must never receive object traffic."""
    from repro.errors import ConfigurationError

    members = [TamperEvidentStore.create(total_blocks=128),
               TamperEvidentStore.attach(SERODevice.create(64)),
               TamperEvidentStore.create(total_blocks=128)]
    fleet = FleetStore(members)
    paths = [f"/k{i}" for i in range(24)]
    for path in paths:
        fleet.put(path, b"v")  # every put must land somewhere legal
    assert {fleet.route(p) for p in paths} <= {0, 2}
    bare_only = FleetStore([TamperEvidentStore.attach(
        SERODevice.create(64))])
    with pytest.raises(ConfigurationError, match="object-capable"):
        bare_only.put("/x", b"v")


def test_process_pass_keeps_member_references_live():
    """Caller-held member/device objects must see mutating-pass
    results whichever executor ran the pass (in-place adoption)."""
    fleet = FleetScheduler.build(2, 32, switching_sigma=0.02,
                                 executor="process", max_workers=2)
    held_store = fleet.stores[0]
    held_device = held_store.device
    held_medium = held_device.medium
    fleet.format_fleet()
    fleet.seal_fleet(lines_per_device=2, line_blocks=4)
    assert fleet.stores[0] is held_store
    assert held_store.device is held_device
    assert held_device.medium is held_medium
    assert len(held_device.heated_lines) == 2
    assert held_medium.heated_count() > 0


def test_fleet_archive_retrievable_from_fresh_facade():
    fleet = FleetStore.create(2, total_blocks=192, archive_blocks=64,
                              seed=123)
    fleet.archive("snap", b"payload" * 40)
    rebuilt = FleetStore(fleet.members)
    assert rebuilt.retrieve("snap") == b"payload" * 40


def test_resolve_fleet_executor_validates_max_workers():
    with pytest.raises(ValueError):
        resolve_fleet_executor("serial", max_workers=0)


def test_close_executors_idempotent():
    from repro.parallel import close_executors, make_executor

    make_executor("thread", 2)
    close_executors()
    close_executors()


def test_put_after_growth_does_not_fork_objects():
    """A write to a remapped path must land on the existing copy."""
    from repro.errors import FileExistsError_

    fleet = FleetStore.create(2, total_blocks=192, seed=77)
    paths = [f"/g{i}" for i in range(16)]
    for path in paths:
        fleet.put(path, b"old")
    before = {p: fleet.route(p) for p in paths}
    while True:  # grow until at least one key remaps
        fleet.add_member(TamperEvidentStore.create(total_blocks=192))
        moved = [p for p in paths if fleet.route(p) != before[p]]
        if moved:
            break
    victim = moved[0]
    with pytest.raises(FileExistsError_):
        fleet.put(victim, b"NEW")  # no silent second copy
    fleet.put(victim, b"NEW", overwrite=True)
    assert fleet.get(victim) == b"NEW"
    fleet.delete(victim)
    with pytest.raises(FileNotFoundError_):
        fleet.get(victim)  # and no stale resurrection


def test_rearchive_keeps_one_home():
    """Re-archiving a name must not strand a stale copy elsewhere."""
    fleet = FleetStore.create(3, total_blocks=192, archive_blocks=96,
                              seed=55)
    fleet.archive("snap", b"version-one" * 20)
    fleet.archive("snap", b"version-two" * 20)
    assert fleet.retrieve("snap") == b"version-two" * 20
    fresh = FleetStore(fleet.members)
    assert fresh.retrieve("snap") == b"version-two" * 20


def test_ungrown_fleet_put_touches_only_routed_member():
    """Before any growth, routing is exact: a put must not charge
    device reads on the other members (the million-object hot path)."""
    fleet = FleetStore.create(3, total_blocks=96, seed=9)
    path = "/hot-path-object"
    target = fleet.route(path)
    others = [i for i in range(3) if i != target]
    counters_before = [dict(fleet.members[i].device.medium.counters)
                       for i in others]
    fleet.put(path, b"x")
    counters_after = [dict(fleet.members[i].device.medium.counters)
                     for i in others]
    assert counters_before == counters_after


def test_executor_instance_with_conflicting_max_workers_raises():
    with pytest.raises(ValueError, match="instance"):
        resolve_fleet_executor(ThreadExecutor(max_workers=8),
                               max_workers=2)
    instance = ThreadExecutor(max_workers=2)
    assert resolve_fleet_executor(instance, max_workers=2) is instance


def test_seal_fleet_validates_line_blocks_before_writing():
    fleet = FleetScheduler.build(2, 16)
    fleet.format_fleet()
    counters_before = [dict(d.medium.counters) for d in fleet.devices]
    with pytest.raises(ValueError, match="power of two"):
        fleet.seal_fleet(line_blocks=3)
    assert [dict(d.medium.counters)
            for d in fleet.devices] == counters_before  # untouched
