"""The remote RPC fleet executor, over real loopback workers.

Four layers under test:

* **wire protocol** — framed pickle round trips, host parsing, the
  truncated-frame contract;
* **resolution** — ``fleet_hosts`` through the full policy chain
  (explicit > ``repro.engine(fleet_hosts=...)`` > installed policy >
  ``REPRO_FLEET_HOSTS`` read lazily at dispatch) and
  ``describe_policy()`` naming the deciding layer;
* **equivalence** — every fleet pass (format / seal / audit / fsck,
  scheduler and :class:`FleetStore` surface) dispatched on ``rpc``
  must be byte-identical to the ``serial`` reference, including RNG
  continuation on the members afterwards;
* **plumbing** — per-host walls and host naming in the reports,
  connection-pool reuse, :func:`repro.parallel.close_executors`
  closing the pools, and :class:`HashRing` stability under permuted
  host lists.

Worker daemons are spawned on loopback per module; every test that
does not need them runs without.
"""

from __future__ import annotations

import socket
import threading
import time
from functools import partial

import numpy as np
import pytest

import repro
import repro.api as api
from repro.api.fleet import FleetStore
from repro.api.policy import ExecutionPolicy
from repro.api.store import TamperEvidentStore
from repro.errors import ConfigurationError
from repro.parallel import (
    HashRing,
    RpcConnectionError,
    RpcExecutor,
    close_connection_pools,
    close_executors,
    parse_hosts,
    spawn_local_worker,
)
from repro.parallel.remote import (
    _pooled_connections,
    ping,
    recv_frame,
    send_frame,
)
from repro.workloads.fleet import FleetScheduler


@pytest.fixture(autouse=True)
def _clean_policy_env(monkeypatch):
    # the CI remote-fleet job exports REPRO_FLEET_EXECUTOR/HOSTS for
    # the example run; these tests manage their own workers and must
    # see the documented defaults
    monkeypatch.delenv(api.EXECUTOR_ENV_VAR, raising=False)
    monkeypatch.delenv(api.FLEET_HOSTS_ENV_VAR, raising=False)
    monkeypatch.delenv(api.FLEET_SECRET_ENV_VAR, raising=False)
    yield
    api.set_policy(None)


@pytest.fixture(scope="module")
def workers():
    spawned = [spawn_local_worker() for _ in range(2)]
    try:
        yield tuple(w.address for w in spawned)
    finally:
        for worker in spawned:
            worker.stop()
        close_connection_pools()


def _build_pair(executor, n=3, blocks=32):
    """Twin fleets (identical seeds): serial reference + one under
    ``executor``."""
    serial = FleetScheduler.build(n, blocks, switching_sigma=0.02,
                                  executor="serial")
    other = FleetScheduler.build(n, blocks, switching_sigma=0.02,
                                 executor=executor)
    return serial, other


def _all_passes(fleet):
    return (fleet.format_fleet().fingerprints(),
            fleet.seal_fleet(lines_per_device=2,
                             line_blocks=4).fingerprints(),
            fleet.audit_fleet().fingerprints(),
            fleet.fsck_fleet().fingerprints())


# -- wire protocol -------------------------------------------------------------


def test_parse_hosts_canonicalises():
    assert parse_hosts("b:2,a:1") == ("a:1", "b:2")
    assert parse_hosts("a:1, b:2") == ("a:1", "b:2")
    for bad in ("", "nohost", "host:", "host:notaport", "host:70000"):
        with pytest.raises(ConfigurationError):
            parse_hosts(bad)


def test_parse_hosts_rejects_duplicates():
    """A duplicated host:port would silently skew HashRing placement
    weights (and double-count its health): loud error instead."""
    with pytest.raises(ConfigurationError, match="duplicate fleet host"):
        parse_hosts(["b:2", "a:1", "a:1"])
    with pytest.raises(ConfigurationError, match="duplicate fleet host"):
        parse_hosts("a:1,b:2,a:1")
    # spelled differently but the same canonical endpoint
    with pytest.raises(ConfigurationError, match="duplicate fleet host"):
        parse_hosts(["a:1", " a:1 "])


def test_frame_roundtrip_over_socketpair():
    a, b = socket.socketpair()
    try:
        message = {"snapshot": np.arange(5), "n": 7}
        send_frame(a, message)
        out = recv_frame(b)
        assert out["n"] == 7
        assert np.array_equal(out["snapshot"], np.arange(5))
    finally:
        a.close()
        b.close()


def test_truncated_frame_raises_connection_error():
    a, b = socket.socketpair()
    try:
        a.sendall(b"SRPC" + (200).to_bytes(8, "big") + b"only a little")
        a.close()
        with pytest.raises(RpcConnectionError, match="mid-frame"):
            recv_frame(b)
    finally:
        b.close()


def test_ping_and_worker_pid(workers):
    pids = {addr: ping(addr) for addr in workers}
    assert all(isinstance(pid, int) and pid > 0 for pid in pids.values())
    assert len(set(pids.values())) == 2  # two distinct daemons


# -- resolution chain ----------------------------------------------------------


def test_fleet_hosts_resolution_layers(monkeypatch):
    monkeypatch.delenv(api.FLEET_HOSTS_ENV_VAR, raising=False)
    assert api.resolve_fleet_hosts() == (None, "default")

    monkeypatch.setenv(api.FLEET_HOSTS_ENV_VAR, "h2:2,h1:1")
    assert api.resolve_fleet_hosts() == (("h1:1", "h2:2"), "env")

    api.set_policy(ExecutionPolicy(fleet_hosts=("p1:1",)))
    assert api.resolve_fleet_hosts() == (("p1:1",), "policy")

    with repro.engine(fleet_hosts=("c1:1", "c2:2")):
        assert api.resolve_fleet_hosts() == (("c1:1", "c2:2"), "context")
        d = api.describe_policy()
        assert d["fleet_hosts"] == ("c1:1", "c2:2")
        assert d["fleet_hosts_source"] == "context"

    assert api.resolve_fleet_hosts("x:9") == (("x:9",), "explicit")


def test_policy_validates_and_canonicalises_hosts():
    policy = ExecutionPolicy(fleet_hosts=("b:2", "a:1"))
    assert policy.fleet_hosts == ("a:1", "b:2")
    with pytest.raises(ConfigurationError):
        ExecutionPolicy(fleet_hosts=("not-a-host",))


def test_rpc_without_hosts_is_a_descriptive_error(monkeypatch):
    monkeypatch.delenv(api.FLEET_HOSTS_ENV_VAR, raising=False)
    fleet = FleetScheduler.build(2, 16, executor="rpc")
    with pytest.raises(ConfigurationError, match="REPRO_FLEET_HOSTS"):
        fleet.format_fleet()


def test_env_hosts_read_lazily_after_scheduler_built(workers, monkeypatch):
    """Exporting REPRO_FLEET_EXECUTOR=rpc + REPRO_FLEET_HOSTS after
    the scheduler exists must still dispatch remotely."""
    monkeypatch.delenv(api.EXECUTOR_ENV_VAR, raising=False)
    monkeypatch.delenv(api.FLEET_HOSTS_ENV_VAR, raising=False)
    fleet = FleetScheduler.build(2, 16)
    assert fleet.format_fleet().executor == "serial"
    monkeypatch.setenv(api.EXECUTOR_ENV_VAR, "rpc")
    monkeypatch.setenv(api.FLEET_HOSTS_ENV_VAR, ",".join(workers))
    report = fleet.audit_fleet()
    assert report.executor == "rpc"
    assert report.hosts == tuple(sorted(workers))


def test_engine_context_selects_rpc(workers):
    fleet = FleetScheduler.build(2, 16)
    with repro.engine(executor="rpc", fleet_hosts=workers):
        report = fleet.format_fleet()
    assert report.executor == "rpc"
    assert report.hosts == tuple(sorted(workers))
    assert fleet.audit_fleet().executor == "serial"  # scope ended


# -- equivalence ---------------------------------------------------------------


def test_rpc_passes_byte_identical_vs_serial(workers):
    """The acceptance criterion: format/seal/audit/fsck per-member
    fingerprints under ``rpc`` match the serial executor byte for
    byte."""
    serial, remote = _build_pair(RpcExecutor(workers))
    assert _all_passes(serial) == _all_passes(remote)


def test_rpc_reinstalls_member_state_exactly(workers):
    """After an rpc pass the caller's members carry the worker-side
    state (medium arrays, RNG position) exactly as a serial pass
    would have left them — and the *next* pass still agrees."""
    serial, remote = _build_pair(RpcExecutor(workers), n=2)
    for fleet in (serial, remote):
        fleet.format_fleet()
        fleet.seal_fleet(lines_per_device=2, line_blocks=4)
        fleet.audit_fleet()
    for s_dev, r_dev in zip(serial.devices, remote.devices):
        assert s_dev.heated_lines == r_dev.heated_lines
        assert np.array_equal(s_dev.medium._mag, r_dev.medium._mag)
        assert np.array_equal(s_dev.medium._sharpness,
                              r_dev.medium._sharpness)
        assert s_dev.medium._rng.bit_generator.state == \
            r_dev.medium._rng.bit_generator.state
    assert serial.audit_fleet().fingerprints() == \
        remote.audit_fleet().fingerprints()


def test_rpc_keeps_caller_references_live(workers):
    """Caller-held member/device/medium objects must see the mutating
    rpc-pass results in place (the adopt_state contract)."""
    fleet = FleetScheduler.build(2, 32, switching_sigma=0.02,
                                 executor=RpcExecutor(workers))
    held_store = fleet.stores[0]
    held_device = held_store.device
    held_medium = held_device.medium
    fleet.format_fleet()
    fleet.seal_fleet(lines_per_device=2, line_blocks=4)
    assert fleet.stores[0] is held_store
    assert held_store.device is held_device
    assert held_device.medium is held_medium
    assert len(held_device.heated_lines) == 2
    assert held_medium.heated_count() > 0


def test_fleet_store_surface_over_rpc(workers):
    """FleetStore seal_many/audit through the rpc executor: same
    receipts and verdicts as serial, hosts named in last_op."""
    def build():
        fleet = FleetStore.create(2, total_blocks=192, seed=33)
        paths = [f"/obj-{i}" for i in range(8)]
        for path in paths:
            fleet.put(path, path.encode() * 8)
        return fleet, paths

    fleet_a, paths = build()
    receipts_serial = fleet_a.seal_many(paths)
    audit_serial = fleet_a.audit()

    fleet_b, _ = build()
    with repro.engine(executor="rpc", fleet_hosts=workers):
        receipts_rpc = fleet_b.seal_many(paths)
        audit_rpc = fleet_b.audit()
    assert [r.line_hash for r in receipts_rpc] == \
        [r.line_hash for r in receipts_serial]
    key = lambda rep: [(r.status, r.line_start, r.label, r.stored_hash)
                       for r in rep.reports]
    assert key(audit_rpc) == key(audit_serial)
    assert fleet_b.last_op.executor == "rpc"
    assert fleet_b.last_op.hosts == tuple(sorted(workers))


# -- sessions ------------------------------------------------------------------


def test_fleet_sessions_resolution_layers(monkeypatch):
    monkeypatch.delenv(api.FLEET_SESSIONS_ENV_VAR, raising=False)
    assert api.resolve_fleet_sessions() == (False, "default")

    monkeypatch.setenv(api.FLEET_SESSIONS_ENV_VAR, "1")
    assert api.resolve_fleet_sessions() == (True, "env")
    monkeypatch.setenv(api.FLEET_SESSIONS_ENV_VAR, "off")
    assert api.resolve_fleet_sessions() == (False, "env")

    api.set_policy(ExecutionPolicy(fleet_sessions=True))
    assert api.resolve_fleet_sessions() == (True, "policy")

    with repro.engine(fleet_sessions=False):
        assert api.resolve_fleet_sessions() == (False, "context")
        d = api.describe_policy()
        assert d["fleet_sessions"] is False
        assert d["fleet_sessions_source"] == "context"

    assert api.resolve_fleet_sessions(True) == (True, "explicit")
    with pytest.raises(TypeError):
        ExecutionPolicy(fleet_sessions="yes")


def test_session_passes_byte_identical_vs_serial(workers):
    """Acceptance: all four passes in session+pipelined mode match the
    serial reference byte for byte, and steady-state audit traffic is
    descriptor-sized, not snapshot-sized."""
    serial, pinned = _build_pair(RpcExecutor(workers, sessions=True))
    assert _all_passes(serial) == _all_passes(pinned)
    # pins were shipped during format; the audit that just ran sent
    # only task descriptors
    report = pinned.audit_fleet()
    assert set(report.bytes_out) <= set(workers)
    assert sum(report.bytes_out.values()) < 8_000
    assert sum(report.bytes_back.values()) > 0
    assert serial.audit_fleet().fingerprints() == report.fingerprints()


def test_session_rng_continuation(workers):
    """After pinned passes the caller-held members carry the exact
    medium arrays and RNG position of the serial twin — and the next
    pass continues from them identically."""
    serial, pinned = _build_pair(RpcExecutor(workers, sessions=True), n=2)
    for fleet in (serial, pinned):
        fleet.format_fleet()
        fleet.seal_fleet(lines_per_device=2, line_blocks=4)
        fleet.audit_fleet()
    for s_dev, p_dev in zip(serial.devices, pinned.devices):
        assert s_dev.heated_lines == p_dev.heated_lines
        assert np.array_equal(s_dev.medium._mag, p_dev.medium._mag)
        assert s_dev.medium._rng.bit_generator.state == \
            p_dev.medium._rng.bit_generator.state
    assert serial.audit_fleet().fingerprints() == \
        pinned.audit_fleet().fingerprints()


def test_pipelined_matches_blocking_dispatch(workers):
    """Pipelining is a transport optimisation only: per-member results
    and folded state must match the one-round-trip-at-a-time client."""
    blocking = FleetScheduler.build(
        3, 32, switching_sigma=0.02,
        executor=RpcExecutor(workers, sessions=True, pipeline=False))
    piped = FleetScheduler.build(
        3, 32, switching_sigma=0.02,
        executor=RpcExecutor(workers, sessions=True, pipeline=True))
    assert _all_passes(blocking) == _all_passes(piped)


def test_session_reports_wire_traffic(workers):
    """FleetOpStats/FleetReport expose per-host bytes: snapshot-sized
    while pinning, then orders of magnitude down once pinned."""
    fleet = FleetScheduler.build(2, 32, switching_sigma=0.02,
                                 executor=RpcExecutor(workers,
                                                      sessions=True))
    first = fleet.format_fleet()
    pin_bytes = sum(first.bytes_out.values())
    fleet.seal_fleet(lines_per_device=2, line_blocks=4)
    steady = fleet.audit_fleet()
    steady_bytes = sum(steady.bytes_out.values())
    assert pin_bytes > 50 * steady_bytes
    # and the plain snapshot executor reports its traffic too
    snap_fleet = FleetScheduler.build(2, 32, switching_sigma=0.02,
                                      executor=RpcExecutor(workers))
    snap = snap_fleet.format_fleet()
    assert sum(snap.bytes_out.values()) > 0
    assert set(snap.bytes_back) <= set(workers)


def test_session_fleet_store_surface(workers):
    """The FleetStore object surface (seal_many/audit) rides sessions
    transparently and records byte counters in last_op."""
    def build():
        fleet = FleetStore.create(2, total_blocks=192, seed=33)
        paths = [f"/obj-{i}" for i in range(8)]
        for path in paths:
            fleet.put(path, path.encode() * 8)
        return fleet, paths

    fleet_a, paths = build()
    receipts_serial = fleet_a.seal_many(paths)
    audit_serial = fleet_a.audit()

    fleet_b, _ = build()
    with repro.engine(executor="rpc", fleet_hosts=workers,
                      fleet_sessions=True):
        receipts_rpc = fleet_b.seal_many(paths)
        audit_rpc = fleet_b.audit()
    assert [r.line_hash for r in receipts_rpc] == \
        [r.line_hash for r in receipts_serial]
    key = lambda rep: [(r.status, r.line_start, r.label, r.stored_hash)
                       for r in rep.reports]
    assert key(audit_rpc) == key(audit_serial)
    assert sum(fleet_b.last_op.bytes_out.values()) > 0


# -- reporting plumbing --------------------------------------------------------


def test_report_names_hosts_and_per_host_walls(workers):
    fleet = FleetScheduler.build(3, 32, switching_sigma=0.02,
                                 executor=RpcExecutor(workers))
    report = fleet.audit_fleet()
    assert report.executor == "rpc"
    assert report.hosts == tuple(sorted(workers))
    assert sum(w.tasks for w in report.worker_walls) == 3
    for wall in report.worker_walls:
        host = wall.worker.removeprefix("rpc-")
        assert host in workers
        assert wall.wall_seconds >= 0.0
    assert {d.worker.removeprefix("rpc-")
            for d in report.devices} <= set(workers)


def test_serial_reports_have_no_hosts():
    fleet = FleetScheduler.build(1, 16)
    assert fleet.format_fleet().hosts == ()


# -- connection pooling --------------------------------------------------------


def test_connection_pool_reused_between_passes(workers):
    close_connection_pools()
    fleet = FleetScheduler.build(4, 16, executor=RpcExecutor(workers))
    fleet.format_fleet()
    pooled_after_first = _pooled_connections()
    assert pooled_after_first >= 1
    fleet.audit_fleet()
    # the second pass reuses the warm sockets instead of stacking more
    assert _pooled_connections() <= pooled_after_first + len(workers)


def test_close_executors_closes_rpc_pools(workers):
    """Regression: close_executors() must release the module-wide rpc
    connection pool even when no rpc instance was ever cached in the
    executor-instance registry (explicit instances bypass it)."""
    close_connection_pools()
    fleet = FleetScheduler.build(2, 16, executor=RpcExecutor(workers))
    fleet.format_fleet()
    assert _pooled_connections() > 0
    close_executors()
    assert _pooled_connections() == 0
    # and the next pass simply dials fresh connections
    assert fleet.audit_fleet().executor == "rpc"


def test_call_worker_reconnects_after_stale_pooled_socket(workers):
    """A pooled socket whose peer vanished is redialled transparently
    when the failure happens before the request is delivered."""
    addr = workers[0]
    assert isinstance(ping(addr), int)  # leaves a pooled connection
    # sabotage: shut down every pooled socket to this worker locally
    from repro.parallel import remote as remote_mod

    with remote_mod._POOL_LOCK:
        for sock in remote_mod._POOL.get(addr, []):
            sock.shutdown(socket.SHUT_RDWR)
    assert isinstance(ping(addr), int)  # reconnect, not an error


# -- host assignment stability -------------------------------------------------


def test_hash_ring_stable_under_host_order():
    """Satellite: the ring is a pure function of the host *set* — two
    nodes configured with the same hosts in different orders must
    route every key identically."""
    hosts = [f"10.0.0.{i}:7401" for i in range(1, 6)]
    ring_a = HashRing(hosts)
    ring_b = HashRing(list(reversed(hosts)))
    ring_c = HashRing(hosts[2:] + hosts[:2])
    keys = [f"member-{i}" for i in range(300)]
    route_a = [ring_a.lookup(k) for k in keys]
    assert route_a == [ring_b.lookup(k) for k in keys]
    assert route_a == [ring_c.lookup(k) for k in keys]
    # and the successor walks agree too (capability fallback path)
    for key in keys[:20]:
        assert list(ring_a.successors(key)) == list(ring_b.successors(key))


def test_rpc_assignment_stable_under_host_order(workers):
    """The executor canonicalises its host list, so permuted configs
    dispatch every member to the same worker."""
    from functools import partial

    a = RpcExecutor(list(workers))
    b = RpcExecutor(list(reversed(workers)))
    assert a.hosts == b.hosts
    tasks = [partial(divmod, 7, 3)] * 5  # picklable placeholder tasks
    run_a, run_b = a.run(tasks), b.run(tasks)
    assert run_a.assignments == run_b.assignments
    assert run_a.results == [(2, 1)] * 5


# -- migration (rebalance) -----------------------------------------------------


def test_migrate_unsealed_restores_exact_routing():
    fleet = FleetStore.create(2, total_blocks=192, seed=61)
    paths = [f"/m{i}" for i in range(16)]
    for path in paths:
        fleet.put(path, path.encode() * 4)
    before = {p: fleet.route(p) for p in paths}
    while True:  # grow until at least one key remaps
        fleet.add_member(TamperEvidentStore.create(total_blocks=192))
        moved = [p for p in paths if fleet.route(p) != before[p]]
        if moved:
            break
    report = fleet.migrate_unsealed()
    assert report.moved >= len(moved)
    assert report.sealed_kept == 0
    assert report.routing_exact
    # objects now live on their routed member: reads touch nobody else
    for path in paths:
        index = fleet.route(path)
        others = [i for i in range(fleet.member_count) if i != index]
        counters = [dict(fleet.members[i].device.medium.counters)
                    for i in others]
        assert fleet.get(path) == path.encode() * 4
        assert [dict(fleet.members[i].device.medium.counters)
                for i in others] == counters
    # and a second pass is a no-op
    again = fleet.migrate_unsealed()
    assert again.moved == 0
    assert again.routing_exact


def test_migrate_skips_member_local_namespaces():
    """Evidence bags and instruction-log chunks are member-local (not
    ring-routed), so they must neither move nor block routing_exact."""
    fleet = FleetStore.create(2, total_blocks=256, seed=81,
                              audit_log=True, audit_rotate_bytes=64)
    paths = [f"/u{i}" for i in range(8)]
    for path in paths:  # enough traffic to rotate sealed log chunks
        fleet.put(path, b"z" * 16)
    export = fleet.export_evidence(
        "case-a", {f"ex-{i}": bytes([i]) * 32 for i in range(4)})
    assert export.intact
    fleet.add_member(TamperEvidentStore.create(total_blocks=256))
    report = fleet.migrate_unsealed()
    # the sealed evidence/log files are not counted as stranded fleet
    # objects: exact routing comes back for the real keyspace
    assert report.sealed_kept == 0
    assert report.routing_exact
    for path in paths:
        assert fleet.get(path) == b"z" * 16
    assert fleet.audit().clean  # bags and log chunks sealed in place


def test_describe_policy_does_not_load_wire_protocol():
    """describe_policy() is a diagnostics call; with no rpc usage it
    must not import the wire-protocol module."""
    import os
    import subprocess
    import sys

    env = dict(os.environ)
    env.pop(api.FLEET_HOSTS_ENV_VAR, None)
    env.pop(api.EXECUTOR_ENV_VAR, None)
    code = ("import sys, repro.api as api; api.describe_policy(); "
            "assert 'repro.parallel.remote' not in sys.modules, "
            "'wire protocol loaded eagerly'")
    subprocess.run([sys.executable, "-c", code], env=env, check=True)


def test_migrate_unsealed_refuses_sealed_objects():
    fleet = FleetStore.create(2, total_blocks=256, seed=71)
    paths = [f"/s{i}" for i in range(12)]
    for path in paths:
        fleet.put(path, b"x" * 64)
    fleet.seal_many(paths)
    homes = {p: fleet._locate(p)[0] for p in paths}
    before = {p: fleet.route(p) for p in paths}
    while True:
        fleet.add_member(TamperEvidentStore.create(total_blocks=256))
        stranded = [p for p in paths if fleet.route(p) != before[p]]
        if stranded:
            break
    report = fleet.migrate_unsealed()
    assert report.sealed_kept >= len(stranded)
    assert report.moved == 0  # nothing unsealed to move
    assert not report.routing_exact  # fallback must stay on
    for path in paths:  # sealed lines stay put and stay readable
        assert fleet._locate(path)[0] == homes[path]
        assert fleet.verify(path).intact


# -- fault policy & health -----------------------------------------------------


def test_fleet_fault_policy_resolution_layers(monkeypatch):
    """fleet_timeout / fleet_retries / fleet_on_failure through the
    five-layer chain, with describe_policy naming the deciding layer."""
    for var in (api.FLEET_TIMEOUT_ENV_VAR, api.FLEET_RETRIES_ENV_VAR,
                api.FLEET_ON_FAILURE_ENV_VAR):
        monkeypatch.delenv(var, raising=False)
    assert api.resolve_fleet_timeout() == (None, "default")
    assert api.resolve_fleet_retries() == (0, "default")
    assert api.resolve_fleet_on_failure() == ("raise", "default")

    monkeypatch.setenv(api.FLEET_TIMEOUT_ENV_VAR, "2.5")
    monkeypatch.setenv(api.FLEET_RETRIES_ENV_VAR, "3")
    monkeypatch.setenv(api.FLEET_ON_FAILURE_ENV_VAR, "degrade")
    assert api.resolve_fleet_timeout() == (2.5, "env")
    assert api.resolve_fleet_retries() == (3, "env")
    assert api.resolve_fleet_on_failure() == ("degrade", "env")
    # 0 is an explicit env disable for the deadline
    monkeypatch.setenv(api.FLEET_TIMEOUT_ENV_VAR, "0")
    assert api.resolve_fleet_timeout() == (None, "env")
    # garbage env values are ignored, like the other fleet switches
    monkeypatch.setenv(api.FLEET_RETRIES_ENV_VAR, "-2")
    assert api.resolve_fleet_retries() == (0, "default")
    monkeypatch.setenv(api.FLEET_ON_FAILURE_ENV_VAR, "explode")
    assert api.resolve_fleet_on_failure() == ("raise", "default")

    api.set_policy(ExecutionPolicy(fleet_timeout=7.0, fleet_retries=1,
                                   fleet_on_failure="degrade"))
    assert api.resolve_fleet_timeout() == (7.0, "policy")
    assert api.resolve_fleet_retries() == (1, "policy")
    assert api.resolve_fleet_on_failure() == ("degrade", "policy")

    with repro.engine(fleet_timeout=0.5, fleet_retries=2,
                      fleet_on_failure="raise"):
        assert api.resolve_fleet_timeout() == (0.5, "context")
        assert api.resolve_fleet_retries() == (2, "context")
        assert api.resolve_fleet_on_failure() == ("raise", "context")
        d = api.describe_policy()
        assert d["fleet_timeout"] == 0.5
        assert d["fleet_timeout_source"] == "context"
        assert d["fleet_retries"] == 2
        assert d["fleet_retries_source"] == "context"
        assert d["fleet_on_failure"] == "raise"
        assert d["fleet_on_failure_source"] == "context"

    assert api.resolve_fleet_timeout(1.5) == (1.5, "explicit")
    assert api.resolve_fleet_retries(4) == (4, "explicit")
    assert api.resolve_fleet_on_failure("degrade") == \
        ("degrade", "explicit")

    with pytest.raises(ValueError):
        api.resolve_fleet_timeout(-1.0)
    with pytest.raises(ValueError):
        api.resolve_fleet_retries(-1)
    with pytest.raises(ValueError):
        api.resolve_fleet_on_failure("explode")
    with pytest.raises(ValueError):
        ExecutionPolicy(fleet_timeout=0)
    with pytest.raises(ValueError):
        ExecutionPolicy(fleet_retries=-1)
    with pytest.raises(ValueError):
        ExecutionPolicy(fleet_on_failure="abort")
    with pytest.raises(TypeError):
        ExecutionPolicy(fleet_retries=1.5)


def test_request_deadline_times_out_on_hung_worker():
    """A server that accepts and then goes silent must surface as
    RpcTimeoutError (an RpcConnectionError subclass) within the
    request deadline, not block forever."""
    from repro.parallel import RpcTimeoutError
    from repro.parallel.remote import call_worker

    gate = threading.Event()
    server = socket.create_server(("127.0.0.1", 0))
    addr = f"127.0.0.1:{server.getsockname()[1]}"

    def hang():
        conn, _peer = server.accept()
        gate.wait(10)  # never replies
        conn.close()

    thread = threading.Thread(target=hang, daemon=True)
    thread.start()
    try:
        t0 = time.monotonic()
        with pytest.raises(RpcTimeoutError, match="deadline"):
            call_worker(addr, ("ping",), deadline=0.4)
        assert time.monotonic() - t0 < 5.0
        assert isinstance(RpcTimeoutError("x"), RpcConnectionError)
    finally:
        gate.set()
        server.close()
        close_connection_pools()


def test_executor_timeout_surfaces_as_rpc_timeout():
    """RpcExecutor(timeout=...) applies the per-request deadline to
    dispatched passes: a hung 'worker' fails the pass with
    RpcTimeoutError instead of hanging it."""
    from repro.parallel import RpcTimeoutError

    gate = threading.Event()
    server = socket.create_server(("127.0.0.1", 0))
    addr = f"127.0.0.1:{server.getsockname()[1]}"

    def hang():
        while not gate.is_set():
            try:
                server.settimeout(0.2)
                conn, _peer = server.accept()
            except (socket.timeout, OSError):
                continue
            # read and discard the request, never answer
            threading.Thread(target=gate.wait, args=(10,),
                             daemon=True).start()

    thread = threading.Thread(target=hang, daemon=True)
    thread.start()
    try:
        executor = RpcExecutor([addr], timeout=0.4)
        with pytest.raises(RpcTimeoutError):
            executor.run([partial(int, 1)])
    finally:
        gate.set()
        server.close()
        close_connection_pools()
        from repro.parallel import reset_host_health

        reset_host_health()


def test_health_breaker_opens_and_reprobes(workers):
    """Three consecutive failures open a host's breaker; usable_hosts
    skips it during probation, then one successful probe re-admits a
    live host immediately under force_probe."""
    from repro.parallel import host_health_snapshot, reset_host_health
    from repro.parallel.remote import (
        HEALTH_FAILURE_THRESHOLD,
        record_host_failure,
        record_host_success,
        usable_hosts,
    )

    live = workers[0]
    dead = "127.0.0.1:1"  # reserved port: nothing listens
    reset_host_health()
    try:
        assert usable_hosts((live, dead)) == (live, dead)
        for _ in range(HEALTH_FAILURE_THRESHOLD):
            record_host_failure(dead, timed_out=True)
        # breaker open: the dead host is skipped during probation
        assert usable_hosts((live, dead)) == (live,)
        snap = host_health_snapshot()
        assert snap[dead]["breaker_open"] is True
        assert snap[dead]["total_timeouts"] == HEALTH_FAILURE_THRESHOLD
        # desperation probe: still dead, stays out
        assert usable_hosts((dead,), probe_timeout=0.3,
                            force_probe=True) == ()
        # a LIVE host with an open breaker is re-admitted by the probe
        for _ in range(HEALTH_FAILURE_THRESHOLD):
            record_host_failure(live)
        assert usable_hosts((live,)) == ()
        assert usable_hosts((live,), force_probe=True) == (live,)
        assert host_health_snapshot()[live]["breaker_open"] is False
        record_host_success(live)
    finally:
        reset_host_health()


def test_failover_members_replace_on_surviving_hosts():
    """Snapshot-pass failover: with retries budgeted, a host killed
    before the pass loses its members to the survivors and the pass
    completes byte-identical to serial — the acceptance floor."""
    from repro.parallel import reset_host_health

    worker_a, worker_b = spawn_local_worker(), spawn_local_worker()
    reset_host_health()
    try:
        serial, fleet = _build_pair(
            RpcExecutor([worker_a.address, worker_b.address],
                        retries=2))
        reference = _all_passes(serial)
        assert fleet.format_fleet().fingerprints() == reference[0]
        worker_b.kill()
        assert fleet.seal_fleet(
            lines_per_device=2, line_blocks=4).fingerprints() == \
            reference[1]
        audited = fleet.audit_fleet()
        assert audited.fingerprints() == reference[2]
        # the failed host was charged its failover re-dispatches
        assert sum(audited.retries.values()) >= 0  # stats present
        assert fleet.fsck_fleet().fingerprints() == reference[3]
    finally:
        worker_a.stop()
        worker_b.stop()
        close_connection_pools()
        reset_host_health()


# -- HMAC-signed frames (ISSUE 8) ----------------------------------------------


def test_signed_frame_roundtrip_and_wrong_secret_rejected():
    from repro.parallel import RpcProtocolError

    a, b = socket.socketpair()
    try:
        message = {"snapshot": np.arange(5), "n": 7}
        send_frame(a, message, secret="hunter2")
        out = recv_frame(b, secret="hunter2")
        assert out["n"] == 7
        assert np.array_equal(out["snapshot"], np.arange(5))
        # a peer holding a different secret must reject the frame
        # *before* unpickling anything
        send_frame(a, message, secret="hunter2")
        with pytest.raises(RpcProtocolError, match="signature"):
            recv_frame(b, secret="not-hunter2")
    finally:
        a.close()
        b.close()


def test_signing_expectation_mismatches_rejected():
    from repro.parallel import RpcProtocolError

    # unsigned frame at a secret-holding peer
    a, b = socket.socketpair()
    try:
        send_frame(a, {"n": 1}, secret=None)
        with pytest.raises(RpcProtocolError, match="unsigned"):
            recv_frame(b, secret="hunter2")
    finally:
        a.close()
        b.close()
    # signed frame at a secretless peer
    a, b = socket.socketpair()
    try:
        send_frame(a, {"n": 1}, secret="hunter2")
        with pytest.raises(RpcProtocolError, match="no fleet secret"):
            recv_frame(b, secret=None)
    finally:
        a.close()
        b.close()


def test_worker_with_secret_rejects_unsigned_and_wrong_secret():
    from repro.parallel import reset_host_health

    worker = spawn_local_worker(secret="hunter2")
    reset_host_health()
    try:
        # the right secret answers normally
        assert ping(worker.address, secret="hunter2") > 0
        # unsigned and wrong-secret callers see only a dropped
        # connection — the worker never answers an unauthenticated
        # frame, not even with an error
        with pytest.raises(RpcConnectionError):
            ping(worker.address, timeout=2.0, secret=None)
        with pytest.raises(RpcConnectionError):
            ping(worker.address, timeout=2.0, secret="wrong")
        # and the worker survives the rejected frames
        assert ping(worker.address, secret="hunter2") > 0
    finally:
        worker.stop()
        close_connection_pools()
        reset_host_health()


@pytest.mark.parametrize("sessions", [False, True])
def test_fleet_passes_byte_identical_over_signed_frames(sessions):
    from repro.parallel import reset_host_health

    spawned = [spawn_local_worker(secret="fleet-hmac-key")
               for _ in range(2)]
    reset_host_health()
    try:
        hosts = [w.address for w in spawned]
        serial, fleet = _build_pair(
            RpcExecutor(hosts, sessions=sessions,
                        secret="fleet-hmac-key"))
        assert _all_passes(fleet) == _all_passes(serial)
    finally:
        for worker in spawned:
            worker.stop()
        close_connection_pools()
        reset_host_health()


def test_fleet_secret_env_layer_reaches_both_ends(monkeypatch):
    """Deployment story: export REPRO_FLEET_SECRET and both the
    spawned worker (env inheritance) and the ambient client (policy
    chain, read lazily per call) sign without any explicit wiring."""
    from repro.parallel import reset_host_health

    worker = spawn_local_worker(secret="ambient-key")
    reset_host_health()
    try:
        monkeypatch.setenv(api.FLEET_SECRET_ENV_VAR, "ambient-key")
        assert ping(worker.address) > 0  # ambient → resolves via env
        monkeypatch.setenv(api.FLEET_SECRET_ENV_VAR, "rotated-away")
        with pytest.raises(RpcConnectionError):
            ping(worker.address, timeout=2.0)
    finally:
        worker.stop()
        close_connection_pools()
        reset_host_health()


def test_explicit_secret_beats_context_and_policy(workers):
    """Chain order for fleet_secret: RpcExecutor(secret=) > context >
    policy > env.  The module workers are unsigned, so the *wrong*
    layer winning shows up as a dropped connection."""
    from repro.parallel import reset_host_health

    reset_host_health()
    addr = workers[0]
    try:
        # context says signed, explicit arg says unsigned: explicit
        # wins and the unsigned worker answers
        with repro.engine(fleet_secret="context-key"):
            executor = RpcExecutor([addr])
            assert executor._resolve_fault_policy()[3] == "context-key"
            assert RpcExecutor([addr], secret="k")\
                ._resolve_fault_policy()[3] == "k"
        api.set_policy(api.ExecutionPolicy(fleet_secret="policy-key"))
        assert RpcExecutor([addr])._resolve_fault_policy()[3] == \
            "policy-key"
        with repro.engine(fleet_secret="context-key"):
            assert RpcExecutor([addr])._resolve_fault_policy()[3] == \
                "context-key"
    finally:
        api.set_policy(None)
        reset_host_health()
