"""Bimodality metric tests (Section 4.1's clustering argument)."""

from repro.device.sero import SERODevice
from repro.fs.bimodal import bimodality, cleaner_waste_fraction
from repro.fs.lfs import FSConfig, SeroFS


def _fs(placement: str) -> SeroFS:
    return SeroFS.format(SERODevice.create(512),
                         FSConfig(heat_placement=placement))


def test_fresh_fs_is_trivially_bimodal():
    fs = _fs("cluster")
    report = bimodality(fs)
    assert report.mostly_heated == 0
    assert report.mixed == 0
    assert report.index == 1.0


def test_cluster_placement_stays_bimodal():
    fs = _fs("cluster")
    for i in range(6):
        fs.create(f"/f{i}", bytes([i]) * 3000)
    for i in range(6):
        fs.heat_file(f"/f{i}")
    report = bimodality(fs)
    assert report.index >= 0.9


def test_naive_placement_creates_mixed_segments():
    cluster = _fs("cluster")
    naive = _fs("naive")
    for fs in (cluster, naive):
        for i in range(6):
            fs.create(f"/f{i}", bytes([i]) * 3000)
        # interleave live writes with heats to force mixing
        for i in range(6):
            fs.heat_file(f"/f{i}")
            fs.create(f"/live{i}", bytes([i]) * 3000)
    assert bimodality(naive).mixed >= bimodality(cluster).mixed


def test_waste_fraction_zero_when_segregated():
    fs = _fs("cluster")
    fs.create("/f", b"x" * 3000)
    assert cleaner_waste_fraction(fs) >= 0.0


def test_report_fraction_list_covers_segments():
    fs = _fs("cluster")
    report = bimodality(fs)
    n_segments = sum(1 for _ in fs.table.iter_segments())
    assert len(report.fractions) == n_segments


def test_thresholds_configurable():
    fs = _fs("cluster")
    fs.create("/f", b"x" * 3000)
    fs.heat_file("/f")
    strict = bimodality(fs, hot_threshold=0.99, cold_threshold=0.01)
    assert strict.mostly_heated + strict.mostly_unheated + strict.mixed == \
        len(strict.fractions)
