"""Segment cleaner tests: policies, relocation, heated-segment rules."""

import pytest

from repro.device.sero import SERODevice, VerifyStatus
from repro.fs.cleaner import POLICIES, clean_segment, run_cleaner, select_victim
from repro.fs.lfs import FSConfig, SeroFS
from repro.fs.segment import BlockState


def _aged_fs(segment_blocks=16, total=512, rewrites=40) -> SeroFS:
    fs = SeroFS.format(SERODevice.create(total),
                       FSConfig(segment_blocks=segment_blocks,
                                auto_clean=False))
    for i in range(8):
        fs.create(f"/f{i}", bytes([i]) * 2000)
    for r in range(rewrites):
        fs.write(f"/f{r % 8}", bytes([r % 256]) * 2000)
    return fs


def test_select_victim_finds_dead_space():
    fs = _aged_fs()
    victim = select_victim(fs)
    assert victim is not None
    assert victim.dead > 0


def test_select_victim_none_when_clean():
    fs = SeroFS.format(SERODevice.create(256), FSConfig(auto_clean=False))
    fs.create("/f", b"x")
    # only the segments written once: nothing dead except dir rewrites
    victim = select_victim(fs)
    if victim is not None:
        assert victim.dead > 0


def test_clean_segment_reclaims_and_preserves_data():
    fs = _aged_fs()
    contents = {f"/f{i}": fs.read(f"/f{i}") for i in range(8)}
    victim = select_victim(fs)
    reclaimed = clean_segment(fs, victim)
    assert reclaimed > 0
    assert victim.dead == 0
    for path, data in contents.items():
        assert fs.read(path) == data


def test_run_cleaner_reclaims_many():
    fs = _aged_fs()
    dead_before = fs.table.dead_blocks()
    reclaimed = run_cleaner(fs, max_segments=8)
    assert reclaimed > 0
    assert fs.table.dead_blocks() < dead_before


@pytest.mark.parametrize("policy", POLICIES)
def test_all_policies_work(policy):
    fs = _aged_fs()
    reclaimed = run_cleaner(fs, max_segments=4, policy=policy)
    assert reclaimed > 0
    for i in range(8):
        assert fs.read(f"/f{i}")  # data intact under every policy


def test_sero_policy_skips_heated_segments():
    fs = _aged_fs()
    # heat one file: its line lands in some segment; make that segment
    # also contain dead blocks by rewriting a neighbour first
    fs.heat_file("/f0")
    heated_segments = {seg.index for seg in fs.table.iter_segments()
                       if seg.heated > 0}
    victim = select_victim(fs, policy="sero")
    assert victim is not None
    assert victim.index not in heated_segments


def test_heated_blocks_survive_cleaning():
    fs = _aged_fs()
    record = fs.heat_file("/f1")
    run_cleaner(fs, max_segments=16)
    for pba in range(record.start, record.start + record.n_blocks):
        assert fs.table.state(pba) is BlockState.HEATED
    assert fs.verify_file("/f1").status is VerifyStatus.INTACT
    assert fs.read("/f1")


def test_cleaning_relocates_directories_too():
    fs = _aged_fs()
    fs.mkdir("/d")
    fs.create("/d/inner", b"nested")
    run_cleaner(fs, max_segments=16)
    assert fs.read("/d/inner") == b"nested"


def test_cleaner_counts_in_stats():
    fs = _aged_fs()
    run_cleaner(fs, max_segments=2)
    stats = fs.stats()
    assert stats["cleaner_runs"] >= 1
    assert stats["blocks_cleaned"] > 0


def test_greedy_picks_lowest_utilisation():
    fs = _aged_fs()
    victim = select_victim(fs, policy="greedy")
    candidates = [seg for seg in fs.table.iter_segments()
                  if seg.dead > 0 and seg.index != fs._cursor_segment]
    best_u = min(seg.live / seg.size for seg in candidates)
    assert victim.live / victim.size == pytest.approx(best_u)
