"""Directory serialisation and path helpers."""

import pytest

from repro.errors import FileSystemError, ReadError
from repro.fs.directory import pack_entries, split_path, unpack_entries
from repro.fs.inode import FileType


def test_roundtrip_empty():
    assert unpack_entries(pack_entries({})) == {}


def test_roundtrip_entries():
    entries = {
        "alpha": (FileType.REGULAR, 2),
        "beta": (FileType.DIRECTORY, 3),
        "γ-utf8": (FileType.REGULAR, 4),
    }
    assert unpack_entries(pack_entries(entries)) == entries


def test_entries_sorted_canonically():
    a = pack_entries({"b": (FileType.REGULAR, 1), "a": (FileType.REGULAR, 2)})
    b = pack_entries({"a": (FileType.REGULAR, 2), "b": (FileType.REGULAR, 1)})
    assert a == b  # canonical serialisation


def test_empty_name_rejected():
    with pytest.raises(FileSystemError):
        pack_entries({"": (FileType.REGULAR, 1)})


def test_slash_in_name_rejected():
    with pytest.raises(FileSystemError):
        pack_entries({"a/b": (FileType.REGULAR, 1)})


def test_name_too_long_rejected():
    with pytest.raises(FileSystemError):
        pack_entries({"x" * 300: (FileType.REGULAR, 1)})


def test_truncated_payload_detected():
    payload = pack_entries({"abc": (FileType.REGULAR, 9)})
    with pytest.raises(ReadError):
        unpack_entries(payload[:-5])
    with pytest.raises(ReadError):
        unpack_entries(b"")


def test_split_path():
    assert split_path("/") == []
    assert split_path("/a") == ["a"]
    assert split_path("/a/b/c") == ["a", "b", "c"]
    assert split_path("/a//b/") == ["a", "b"]


def test_split_path_requires_absolute():
    with pytest.raises(FileSystemError):
        split_path("relative/path")
