"""fsck and forensic deep-scan tests (Section 5.2 recovery claims)."""

import pytest

from repro.device.sero import SERODevice, VerifyStatus
from repro.fs.fsck import deep_scan, fsck
from repro.fs.lfs import SeroFS
from repro.security import attacks


def test_fsck_clean_on_healthy_fs(fs):
    fs.mkdir("/d")
    fs.create("/d/f", b"data")
    fs.create("/sealed", b"seal me " * 50)
    fs.heat_file("/sealed")
    report = fsck(fs)
    assert report.clean
    assert not report.warnings
    assert all(r.status is VerifyStatus.INTACT
               for r in report.heated_verifications.values())


def test_fsck_detects_tampered_line(fs):
    fs.create("/sealed", b"seal me " * 50)
    record = fs.heat_file("/sealed")
    attacks.mwb_data(fs.device, record.start)
    report = fsck(fs)
    assert not report.clean
    assert any("hash-mismatch" in e for e in report.errors)


def test_fsck_detects_dangling_imap(fs):
    fs.create("/f", b"x")
    ino = fs.stat("/f").ino
    fs.imap[ino] = 200  # point at garbage
    report = fsck(fs, verify_lines=False)
    assert not report.clean


def test_fsck_warns_unreachable_inode(fs):
    fs.create("/f", b"x")
    ino = fs.stat("/f").ino
    # drop the directory entry but keep the imap entry
    parent, name = fs._lookup_parent("/f")
    entries = fs._dir_entries(parent)
    del entries[name]
    from repro.fs.directory import pack_entries

    fs._write_file_blocks(parent, pack_entries(entries))
    report = fsck(fs, verify_lines=False)
    assert any(str(ino) in w for w in report.warnings)


def test_deep_scan_recovers_heated_files(fs):
    payload = b"compliance record " * 40
    fs.create("/keep", payload)
    fs.heat_file("/keep")
    report = deep_scan(fs.device)
    assert report.intact_count == 1
    recovered = report.recovered[0]
    assert recovered.name_hint == "keep"
    assert recovered.data == payload


def test_deep_scan_after_directory_wipe(fs):
    payload = b"must survive " * 30
    fs.create("/victim", payload)
    fs.heat_file("/victim")
    attacks.clear_directory(fs)
    report = deep_scan(fs.device)
    names = [f.name_hint for f in report.recovered]
    assert "victim" in names
    assert report.recovered[names.index("victim")].data == payload


def test_deep_scan_flags_tampered_lines(fs):
    fs.create("/target", b"x" * 1000)
    record = fs.heat_file("/target")
    attacks.mwb_data(fs.device, record.start)
    report = deep_scan(fs.device)
    assert report.tampered_lines
    assert report.tampered_lines[0].status is VerifyStatus.HASH_MISMATCH


def test_deep_scan_ignores_unheated_files(fs):
    fs.create("/plain", b"not sealed")
    report = deep_scan(fs.device)
    assert report.recovered == []


def test_deep_scan_empty_device():
    device = SERODevice.create(64)
    report = deep_scan(device)
    assert report.recovered == []
    assert report.intact_count == 0


def test_deep_scan_multiple_files(fs):
    for i in range(3):
        fs.create(f"/doc{i}", bytes([i]) * 700)
        fs.heat_file(f"/doc{i}")
    report = deep_scan(fs.device)
    assert sorted(f.name_hint for f in report.recovered) == \
        ["doc0", "doc1", "doc2"]
    assert report.intact_count == 3
