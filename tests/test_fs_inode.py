"""Inode and pointer-block serialisation tests."""

import pytest

from repro.device.sector import BLOCK_SIZE
from repro.errors import FileSystemError, ReadError
from repro.fs.inode import (
    MAX_FILE_BLOCKS,
    MAX_FILE_SIZE,
    N_DIRECT,
    N_INDIRECT,
    POINTERS_PER_INDIRECT,
    FileType,
    Inode,
    pack_pointer_block,
    unpack_pointer_block,
)


def test_roundtrip_minimal():
    inode = Inode(ino=7, name_hint="file.txt")
    out = Inode.unpack(inode.pack())
    assert out.ino == 7
    assert out.ftype is FileType.REGULAR
    assert out.name_hint == "file.txt"
    assert out.direct == []
    assert out.indirect == []


def test_roundtrip_full_pointers():
    inode = Inode(ino=1, ftype=FileType.DIRECTORY, link_count=3,
                  size=99999, mtime=42, name_hint="big",
                  direct=list(range(100, 100 + N_DIRECT)),
                  indirect=list(range(5000, 5000 + N_INDIRECT)))
    out = Inode.unpack(inode.pack())
    assert out.direct == inode.direct
    assert out.indirect == inode.indirect
    assert out.link_count == 3
    assert out.size == 99999
    assert out.mtime == 42
    assert out.ftype is FileType.DIRECTORY


def test_packed_size_is_one_block():
    assert len(Inode(ino=1).pack()) == BLOCK_SIZE


def test_crc_detects_corruption():
    payload = bytearray(Inode(ino=1).pack())
    payload[20] ^= 0xFF
    with pytest.raises(ReadError):
        Inode.unpack(bytes(payload))


def test_data_block_is_not_an_inode():
    with pytest.raises(ReadError):
        Inode.unpack(b"\x00" * BLOCK_SIZE)


def test_name_hint_truncated_to_64_bytes():
    inode = Inode(ino=1, name_hint="x" * 100)
    assert len(Inode.unpack(inode.pack()).name_hint) == 64


def test_unicode_name_hint():
    inode = Inode(ino=1, name_hint="résumé")
    assert Inode.unpack(inode.pack()).name_hint == "résumé"


def test_too_many_pointers_rejected():
    with pytest.raises(FileSystemError):
        Inode(ino=1, direct=list(range(N_DIRECT + 1))).pack()
    with pytest.raises(FileSystemError):
        Inode(ino=1, indirect=list(range(N_INDIRECT + 1))).pack()


def test_n_blocks_from_size():
    assert Inode(ino=1, size=0).n_blocks == 0
    assert Inode(ino=1, size=1).n_blocks == 1
    assert Inode(ino=1, size=BLOCK_SIZE).n_blocks == 1
    assert Inode(ino=1, size=BLOCK_SIZE + 1).n_blocks == 2


def test_max_file_size_consistent():
    assert MAX_FILE_SIZE == MAX_FILE_BLOCKS * BLOCK_SIZE
    assert MAX_FILE_BLOCKS == N_DIRECT + N_INDIRECT * POINTERS_PER_INDIRECT


def test_pointer_block_roundtrip():
    ptrs = list(range(10, 40))
    assert unpack_pointer_block(pack_pointer_block(ptrs)) == ptrs


def test_pointer_block_full_and_empty():
    full = list(range(POINTERS_PER_INDIRECT))
    assert unpack_pointer_block(pack_pointer_block(full)) == full
    assert unpack_pointer_block(pack_pointer_block([])) == []


def test_pointer_block_overflow():
    with pytest.raises(FileSystemError):
        pack_pointer_block(list(range(POINTERS_PER_INDIRECT + 1)))


def test_pointer_block_wrong_size():
    with pytest.raises(ReadError):
        unpack_pointer_block(b"\x00" * 100)
