"""Superblock and checkpoint serialisation tests."""

import pytest

from repro.device.sector import BLOCK_SIZE
from repro.errors import FileSystemError, ReadError
from repro.fs.layout import Checkpoint, Superblock


def test_superblock_roundtrip():
    sb = Superblock(total_blocks=1024, segment_blocks=16,
                    checkpoint_start=1, checkpoint_blocks=7)
    out = Superblock.unpack(sb.pack())
    assert out == sb


def test_superblock_is_one_block():
    sb = Superblock(1, 1, 1, 1)
    assert len(sb.pack()) == BLOCK_SIZE


def test_superblock_crc():
    packed = bytearray(Superblock(1, 1, 1, 1).pack())
    packed[10] ^= 1
    with pytest.raises(ReadError):
        Superblock.unpack(bytes(packed))


def test_superblock_magic():
    with pytest.raises(ReadError):
        Superblock.unpack(b"\x00" * BLOCK_SIZE)


def test_checkpoint_roundtrip():
    cp = Checkpoint(generation=9, next_ino=42, tick=100,
                    imap={1: 10, 2: 20, 77: 99},
                    heated_lines=[(32, 8), (48, 16)])
    out = Checkpoint.unpack(cp.pack())
    assert out.generation == 9
    assert out.next_ino == 42
    assert out.tick == 100
    assert out.imap == cp.imap
    assert out.heated_lines == cp.heated_lines


def test_checkpoint_empty_maps():
    cp = Checkpoint(generation=1, next_ino=2, tick=0)
    out = Checkpoint.unpack(cp.pack())
    assert out.imap == {}
    assert out.heated_lines == []


def test_checkpoint_crc_detects_corruption():
    raw = bytearray(Checkpoint(generation=1, next_ino=2, tick=3).pack())
    raw[12] ^= 0xFF
    with pytest.raises(ReadError):
        Checkpoint.unpack(bytes(raw))


def test_checkpoint_truncation_detected():
    raw = Checkpoint(generation=1, next_ino=2, tick=3).pack()
    with pytest.raises(ReadError):
        Checkpoint.unpack(raw[:-2])


def test_checkpoint_block_split_roundtrip():
    imap = {i: i * 7 for i in range(1, 120)}
    cp = Checkpoint(generation=5, next_ino=200, tick=9, imap=imap)
    blocks = cp.to_blocks(capacity_blocks=16)
    assert all(len(b) == BLOCK_SIZE for b in blocks)
    out = Checkpoint.from_blocks(blocks)
    assert out.imap == imap


def test_checkpoint_overflow_raises():
    imap = {i: i for i in range(1, 2000)}
    cp = Checkpoint(generation=1, next_ino=1, tick=1, imap=imap)
    with pytest.raises(FileSystemError):
        cp.to_blocks(capacity_blocks=2)
