"""SeroFS end-to-end behaviour tests (Section 4)."""

import pytest

from repro.device.sero import SERODevice, VerifyStatus
from repro.errors import (
    DirectoryNotEmptyError,
    FileExistsError_,
    FileNotFoundError_,
    FileSystemError,
    ImmutableFileError,
    NoSpaceError,
    NotADirectoryError_,
)
from repro.fs.inode import FileType, MAX_FILE_SIZE
from repro.fs.lfs import FSConfig, SeroFS
from repro.fs.segment import BlockState


def test_format_creates_root(fs):
    assert fs.listdir("/") == []
    assert fs.stat("/").ftype is FileType.DIRECTORY


def test_create_read_roundtrip(fs):
    fs.create("/a.txt", b"hello")
    assert fs.read("/a.txt") == b"hello"
    assert fs.stat("/a.txt").size == 5


def test_empty_file(fs):
    fs.create("/empty")
    assert fs.read("/empty") == b""


def test_multiblock_file(fs):
    data = bytes(range(256)) * 10  # 2560 bytes, 5 blocks
    fs.create("/multi", data)
    assert fs.read("/multi") == data


def test_indirect_pointer_file(fs):
    data = b"\xab" * (50 * 512)  # 50 blocks: needs indirect pointers
    fs.create("/big", data)
    assert fs.read("/big") == data


def test_file_too_large_rejected(fs):
    with pytest.raises(FileSystemError):
        fs.create("/huge", b"\x00" * (MAX_FILE_SIZE + 1))


def test_create_duplicate_rejected(fs):
    fs.create("/dup", b"x")
    with pytest.raises(FileExistsError_):
        fs.create("/dup", b"y")


def test_nested_directories(fs):
    fs.mkdir("/a")
    fs.mkdir("/a/b")
    fs.create("/a/b/c.txt", b"deep")
    assert fs.read("/a/b/c.txt") == b"deep"
    assert fs.listdir("/a") == ["b"]


def test_missing_file(fs):
    with pytest.raises(FileNotFoundError_):
        fs.read("/ghost")


def test_read_directory_rejected(fs):
    fs.mkdir("/d")
    with pytest.raises(FileSystemError):
        fs.read("/d")


def test_listdir_on_file_rejected(fs):
    fs.create("/f", b"")
    with pytest.raises(NotADirectoryError_):
        fs.listdir("/f")


def test_write_replaces_content(fs):
    fs.create("/f", b"old content here")
    fs.write("/f", b"new")
    assert fs.read("/f") == b"new"
    assert fs.stat("/f").size == 3


def test_rewrite_marks_old_blocks_dead(fs):
    fs.create("/f", b"x" * 2048)
    dead_before = fs.table.dead_blocks()
    fs.write("/f", b"y" * 2048)
    assert fs.table.dead_blocks() > dead_before


def test_append(fs):
    fs.create("/log", b"line1\n")
    fs.append("/log", b"line2\n")
    assert fs.read("/log") == b"line1\nline2\n"


def test_unlink(fs):
    fs.create("/gone", b"data")
    fs.unlink("/gone")
    with pytest.raises(FileNotFoundError_):
        fs.read("/gone")


def test_unlink_frees_blocks(fs):
    fs.create("/gone", b"z" * 4096)
    live_before = fs.table.counts()["live"]
    fs.unlink("/gone")
    assert fs.table.counts()["live"] < live_before


def test_hard_links(fs):
    fs.create("/orig", b"shared")
    fs.link("/orig", "/alias")
    assert fs.read("/alias") == b"shared"
    assert fs.stat("/orig").link_count == 2
    fs.unlink("/orig")
    assert fs.read("/alias") == b"shared"  # survives: link count was 2


def test_rmdir(fs):
    fs.mkdir("/d")
    fs.rmdir("/d")
    assert fs.listdir("/") == []


def test_rmdir_non_empty_refused(fs):
    fs.mkdir("/d")
    fs.create("/d/f", b"")
    with pytest.raises(DirectoryNotEmptyError):
        fs.rmdir("/d")


def test_rmdir_root_refused(fs):
    with pytest.raises(FileSystemError):
        fs.rmdir("/")


def test_heat_file_basic(fs):
    fs.create("/seal", b"audit trail " * 50)
    record = fs.heat_file("/seal", timestamp=77)
    assert record.timestamp == 77
    assert fs.stat("/seal").heated
    assert fs.verify_file("/seal").status is VerifyStatus.INTACT


def test_heated_file_still_readable(fs):
    data = b"evidence " * 100
    fs.create("/seal", data)
    fs.heat_file("/seal")
    assert fs.read("/seal") == data


def test_heated_file_immutable(fs):
    fs.create("/seal", b"x")
    fs.heat_file("/seal")
    with pytest.raises(ImmutableFileError):
        fs.write("/seal", b"y")
    with pytest.raises(ImmutableFileError):
        fs.unlink("/seal")
    with pytest.raises(ImmutableFileError):
        fs.link("/seal", "/alias")
    with pytest.raises(ImmutableFileError):
        fs.heat_file("/seal")  # already heated


def test_heat_unknown_file(fs):
    with pytest.raises(FileNotFoundError_):
        fs.heat_file("/nothing")


def test_verify_unheated_file_rejected(fs):
    fs.create("/plain", b"x")
    with pytest.raises(FileSystemError):
        fs.verify_file("/plain")


def test_heat_clusters_file_contiguously(fs):
    # scatter the file by interleaved writes, then heat: the line must
    # be one contiguous aligned extent
    fs.create("/a", b"a" * 1500)
    fs.create("/b", b"b" * 1500)
    fs.write("/a", b"A" * 1500)
    record = fs.heat_file("/a")
    assert record.start % record.n_blocks == 0
    for pba in range(record.start, record.start + record.n_blocks):
        assert fs.table.state(pba) is BlockState.HEATED


def test_heat_line_length_is_padded_power_of_two(fs):
    fs.create("/five", b"z" * (5 * 512))  # 5 data + 1 inode + 1 hash = 7
    record = fs.heat_file("/five")
    assert record.n_blocks == 8


def test_heat_indirect_file(fs):
    data = b"q" * (50 * 512)
    fs.create("/big", data)
    record = fs.heat_file("/big")
    assert fs.read("/big") == data
    assert fs.verify_file("/big").status is VerifyStatus.INTACT
    assert record.n_blocks == 64  # 50 data + 1 indirect + 1 inode + 1 hash


def test_cluster_placement_puts_lines_at_device_end(fs):
    fs.create("/f", b"x" * 600)
    record = fs.heat_file("/f")
    assert record.start > fs.device.total_blocks // 2


def test_naive_placement_puts_lines_at_front(device):
    fs = SeroFS.format(device, FSConfig(heat_placement="naive"))
    fs.create("/f", b"x" * 600)
    record = fs.heat_file("/f")
    assert record.start < device.total_blocks // 2


def test_verify_all_files(fs):
    for name in ("a", "b"):
        fs.create(f"/{name}", name.encode() * 300)
        fs.heat_file(f"/{name}")
    results = fs.verify_all_files()
    assert len(results) == 2
    assert all(r.status is VerifyStatus.INTACT for r in results.values())


def test_checkpoint_mount_roundtrip(fs, device):
    fs.mkdir("/dir")
    fs.create("/dir/f", b"persisted")
    fs.create("/sealed", b"forever")
    fs.heat_file("/sealed", timestamp=3)
    fs.checkpoint()
    remounted = SeroFS.mount(device)
    assert remounted.read("/dir/f") == b"persisted"
    assert remounted.read("/sealed") == b"forever"
    assert remounted.stat("/sealed").heated
    assert remounted.verify_file("/sealed").status is VerifyStatus.INTACT


def test_mount_uses_latest_checkpoint(fs, device):
    fs.create("/v1", b"1")
    fs.checkpoint()
    fs.create("/v2", b"2")
    fs.checkpoint()
    remounted = SeroFS.mount(device)
    assert remounted.read("/v2") == b"2"


def test_mutations_after_mount(fs, device):
    fs.create("/f", b"before")
    fs.checkpoint()
    remounted = SeroFS.mount(device)
    remounted.write("/f", b"after")
    remounted.create("/g", b"new")
    assert remounted.read("/f") == b"after"
    assert remounted.read("/g") == b"new"


def test_out_of_space():
    fs = SeroFS.format(SERODevice.create(32))
    with pytest.raises(NoSpaceError):
        for i in range(100):
            fs.create(f"/fill{i}", b"\xdd" * 4096)


def test_stats_keys(fs):
    fs.create("/f", b"x")
    stats = fs.stats()
    for key in ("blocks_written", "blocks_live", "blocks_free",
                "lines_heated", "device_time_s"):
        assert key in stats


def test_tick_advances(fs):
    t0 = fs.tick
    fs.create("/f", b"x")
    fs.write("/f", b"y")
    assert fs.tick == t0 + 2
