"""Segment table / block state machine tests."""

import pytest

from repro.errors import ConfigurationError
from repro.fs.segment import BlockInfo, BlockState, SegmentTable


@pytest.fixture
def table() -> SegmentTable:
    return SegmentTable(total_blocks=64, segment_blocks=8, reserved_prefix=8)


def test_initial_counts(table):
    counts = table.counts()
    assert counts["reserved"] == 8
    assert counts["free"] == 56
    assert counts["live"] == 0


def test_mark_live_requires_owner(table):
    with pytest.raises(ConfigurationError):
        table.set_state(10, BlockState.LIVE)


def test_live_dead_free_cycle(table):
    table.mark_live(10, ino=2, fbn=0)
    assert table.state(10) is BlockState.LIVE
    assert table.owner(10) == BlockInfo(ino=2, fbn=0, is_inode=False)
    table.mark_dead(10)
    assert table.state(10) is BlockState.DEAD
    assert table.owner(10) is None
    table.set_state(10, BlockState.FREE)
    assert table.state(10) is BlockState.FREE


def test_heated_is_terminal(table):
    table.mark_heated(12)
    with pytest.raises(ConfigurationError):
        table.set_state(12, BlockState.FREE)
    with pytest.raises(ConfigurationError):
        table.mark_live(12, ino=1)
    # re-asserting heated is allowed (idempotent)
    table.set_state(12, BlockState.HEATED)


def test_segment_aggregates(table):
    table.mark_live(8, ino=1)
    table.mark_live(9, ino=1)
    table.mark_dead(9)
    table.mark_heated(10)
    seg = table.segment_of(8)
    assert seg.live == 1
    assert seg.dead == 1
    assert seg.heated == 1
    assert seg.free == 5
    assert seg.utilization == pytest.approx(1 / 8)
    assert seg.heated_fraction == pytest.approx(1 / 8)
    assert seg.reclaimable == 6


def test_counts_stay_consistent(table):
    table.mark_live(20, ino=1)
    table.mark_dead(20)
    table.mark_live(20, ino=2)
    counts = table.counts()
    assert counts["live"] == 1
    assert counts["dead"] == 0


def test_empty_segments(table):
    assert len(table.empty_segments()) == 7
    table.mark_live(16, ino=1)
    assert len(table.empty_segments()) == 6


def test_find_free_extent_alignment(table):
    start = table.find_free_extent(8, alignment=8)
    assert start == 8  # first non-reserved aligned extent
    table.mark_live(9, ino=1)
    assert table.find_free_extent(8, alignment=8) == 16


def test_find_free_extent_none(table):
    for pba in range(8, 64):
        table.mark_live(pba, ino=1, fbn=pba)
    assert table.find_free_extent(4, alignment=4) is None


def test_live_blocks_of_segment(table):
    table.mark_live(8, ino=3, fbn=7)
    table.mark_live(11, ino=4, is_inode=True)
    live = table.live_blocks_of_segment(table.segments[1])
    assert [(pba, info.ino) for pba, info in live] == [(8, 3), (11, 4)]


def test_validation():
    with pytest.raises(ConfigurationError):
        SegmentTable(total_blocks=64, segment_blocks=7)
    with pytest.raises(ConfigurationError):
        SegmentTable(total_blocks=65, segment_blocks=8)
    with pytest.raises(ConfigurationError):
        SegmentTable(total_blocks=64, segment_blocks=8, reserved_prefix=3)


def test_iter_segments_skips_fully_reserved(table):
    indices = [seg.index for seg in table.iter_segments()]
    assert 0 not in indices
    assert len(indices) == 7
