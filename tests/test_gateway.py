"""The HTTP gateway end to end: real sockets, typed round trips.

Five layers:

* **byte-identity** — every object/fleet operation issued through
  :class:`GatewayClient` must return results ``==`` to the same
  sequence run on a direct in-process ``FleetStore`` twin, and leave
  every member store at the identical
  :func:`~repro.parallel.session.store_fingerprint`;
* **degrade over HTTP** — a fleet pass that loses members
  (``fleet_on_failure="degrade"`` with an unreachable host) surfaces
  as **207 Multi-Status** with typed
  :class:`~repro.parallel.MemberFailure` slots, and an unreachable
  fleet (``on_failure="raise"``) as a retryable **503**;
* **settings** — ``GatewaySettings`` resolution: inline token spec
  beats token file, missing credentials refuse to start, fleet-shape
  env knobs;
* **lifecycle** — graceful drain answers 503 to new requests and the
  closed server refuses connections;
* **evidence search** — ``/v1/t/<tenant>/search`` is tenant-confined
  (smuggled tenant filters stripped), standing tamper alerts fire
  exactly once per transition through ``/v1/admin/alerts``, and
  degraded audits surface typed member-failure documents in the
  gateway's evidence index.
"""

from __future__ import annotations

import json
import socket

import pytest

import repro.api as api
from repro.api.fleet import FleetStore
from repro.api.policy import ExecutionPolicy
from repro.api.store import StoreConfig
from repro.errors import ConfigurationError
from repro.gateway import (
    GatewayApp,
    GatewayClient,
    GatewayConnectionError,
    GatewayHTTPError,
    GatewayServer,
    GatewaySettings,
    TokenTable,
    confine,
    evidence_case,
)
from repro.parallel import MemberFailure, close_connection_pools
from repro.parallel.session import store_fingerprint

SPEC = "root-token=admin;acme-rw=acme:rw;globex-rw=globex:rw"
CONFIG = StoreConfig(total_blocks=256, audit_log=True)


def _fingerprints(fleet):
    return [store_fingerprint(member) for member in fleet.members]


@pytest.fixture()
def stack():
    """A serving gateway plus its identically seeded in-process twin."""
    fleet = FleetStore.create(3, CONFIG)
    twin = FleetStore.create(3, CONFIG)
    app = GatewayApp(fleet, TokenTable.from_spec(SPEC))
    with GatewayServer(app) as server:
        yield server, fleet, twin


# -- byte-identity against the in-process twin ---------------------------------


def test_object_ops_byte_identical_to_twin(stack):
    server, fleet, twin = stack
    client = GatewayClient(server.address, "acme-rw", tenant="acme")

    info = client.put("/ledger/2026/q1", b"entry " * 20)
    receipt = client.seal("/ledger/2026/q1", timestamp=44)
    verdict = client.verify("/ledger/2026/q1")
    data = client.get("/ledger/2026/q1")

    path = confine("acme", "/ledger/2026/q1")
    assert info == twin.put(path, b"entry " * 20, make_parents=True)
    assert receipt == twin.seal(path, timestamp=44)
    assert verdict == twin.verify(path)
    assert data == twin.get(path)
    assert receipt.path == path  # receipts carry real storage paths
    assert _fingerprints(fleet) == _fingerprints(twin)


def test_seal_many_and_audit_byte_identical_to_twin(stack):
    server, fleet, twin = stack
    client = GatewayClient(server.address, "acme-rw", tenant="acme")
    admin = GatewayClient(server.address, "root-token")
    paths = [f"/batch/{i}" for i in range(6)]

    for i, path in enumerate(paths):
        client.put(path, bytes([i]) * 30)
        twin.put(confine("acme", path), bytes([i]) * 30,
                 make_parents=True)
    receipts = client.seal_many(paths, timestamp=7)
    twin_receipts = twin.seal_many([confine("acme", p) for p in paths],
                                   timestamp=7)
    assert receipts == twin_receipts
    assert not client.last_degraded

    report = admin.audit()
    assert report == twin.audit()
    assert report.clean
    assert _fingerprints(fleet) == _fingerprints(twin)


def test_export_evidence_byte_identical_to_twin(stack):
    server, fleet, twin = stack
    client = GatewayClient(server.address, "acme-rw", tenant="acme")
    exhibits = {"mail.txt": b"A" * 50, "disk.img": b"B" * 80}

    export = client.export_evidence("case-9", exhibits, timestamp=3)
    reference = twin.export_evidence(evidence_case("acme", "case-9"),
                                     exhibits, timestamp=3)
    assert export == reference
    assert export.intact
    assert _fingerprints(fleet) == _fingerprints(twin)


def test_history_matches_member_logs(stack):
    server, fleet, _twin = stack
    client = GatewayClient(server.address, "acme-rw", tenant="acme")
    admin = GatewayClient(server.address, "root-token")
    client.put("/doc", b"x")
    client.seal("/doc")

    history = admin.history()
    assert history == [member.history() for member in fleet.members]
    flat = b"\n".join(rec for log in history for _t, rec in log)
    assert confine("acme", "/doc").encode() in flat


def test_describe_names_fleet_and_policy(stack):
    server, _fleet, _twin = stack
    admin = GatewayClient(server.address, "root-token")
    described = admin.describe()
    assert described["fleet"]["members"] == 3
    # tenant tokens may not introspect the deployment
    tenant = GatewayClient(server.address, "acme-rw", tenant="acme")
    with pytest.raises(GatewayHTTPError) as err:
        tenant.describe()
    assert err.value.status == 403


# -- degraded and unreachable fleets over HTTP ---------------------------------


def _dead_host_splitting(live_addr, member_keys):
    """An address nothing listens on, placed by the ring so the member
    keys split across the live and dead hosts."""
    from repro.parallel import HashRing, parse_hosts

    for _ in range(64):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead = f"127.0.0.1:{probe.getsockname()[1]}"
        probe.close()
        hosts = parse_hosts([live_addr, dead])
        if {HashRing(hosts).lookup(k)
                for k in member_keys} == set(hosts):
            return dead, hosts
    raise AssertionError("no splitting dead host found in 64 draws")


def test_degraded_pass_surfaces_as_207_with_typed_failures():
    """Kill a fleet host out from under the gateway: seal_many and
    audit answer 207, surviving slots byte-identical to the serial
    twin, failed slots decoding to MemberFailure records."""
    from repro.parallel import HashRing, reset_host_health, \
        spawn_local_worker

    n = 4
    worker = spawn_local_worker()
    dead, hosts = _dead_host_splitting(
        worker.address, [f"member-{i}" for i in range(n)])
    lost = {i for i in range(n)
            if HashRing(hosts).lookup(f"member-{i}") == dead}
    reset_host_health()
    fleet = FleetStore.create(n, CONFIG)
    twin = FleetStore.create(n, CONFIG)
    app = GatewayApp(fleet, TokenTable.from_spec(SPEC))
    try:
        with GatewayServer(app) as server:
            client = GatewayClient(server.address, "acme-rw",
                                   tenant="acme")
            admin = GatewayClient(server.address, "root-token")
            paths = [f"/obj/{i}" for i in range(8)]
            for path in paths:  # puts are member-local: still serial
                client.put(path, b"q" * 25)
                twin.put(confine("acme", path), b"q" * 25,
                         make_parents=True)
            # the path batch must touch both lost and surviving
            # members for the partial report to be interesting
            routed = {fleet.route(confine("acme", p)) for p in paths}
            assert routed & lost and routed - lost

            # fleet dispatch switches to the degraded rpc fleet via
            # the installed policy — visible to the server's handler
            # threads, unlike a context manager on this test thread
            api.set_policy(ExecutionPolicy(
                executor="rpc", fleet_hosts=hosts, fleet_retries=0,
                fleet_timeout=10.0, fleet_on_failure="degrade"))

            receipts = client.seal_many(paths, timestamp=2)
            assert client.last_degraded
            failed = [r for r in receipts
                      if isinstance(r, MemberFailure)]
            sealed = {r.path: r for r in receipts
                      if not isinstance(r, MemberFailure)}
            assert failed and sealed
            assert {f.index for f in failed} <= lost
            assert all(f.error_type == "RpcConnectionError"
                       for f in failed)

            # the failed pass opened the health breaker on the dead
            # host; clear it so the audit places members there again
            # instead of failing over cleanly to the survivor
            reset_host_health()
            report, failures = admin.audit_failures()
            assert admin.last_degraded
            assert not report.clean
            assert {f.index for f in failures} == lost
            assert any("member audit failed" in e
                       for e in report.fs_errors)

            # the gateway's evidence index recorded the degraded
            # pass as typed member-failure documents, faceted per
            # lost member (tenant-less, so only visible in-process)
            lost_docs = app.index.search(
                "verdict:member-failure", facets=("member", "type"))
            assert lost_docs.total == len(lost)
            assert dict(lost_docs.facets["member"]) == \
                {f"m{i}": 1 for i in lost}
            assert dict(lost_docs.facets["type"]) == \
                {"failure": len(lost)}
            assert {h.fields["error_type"]
                    for h in lost_docs.hits} == {"RpcConnectionError"}

            # surviving members sealed byte-identical to the twin
            api.set_policy(None)
            twin_receipts = twin.seal_many(
                [confine("acme", p) for p in paths], timestamp=2)
            by_path = {r.path: r for r in twin_receipts}
            for path, receipt in sealed.items():
                assert receipt == by_path[path]
    finally:
        api.set_policy(None)
        worker.stop()
        close_connection_pools()
        reset_host_health()


def test_unreachable_fleet_is_a_retryable_503():
    from repro.parallel import reset_host_health

    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    dead = f"127.0.0.1:{probe.getsockname()[1]}"
    probe.close()
    reset_host_health()
    fleet = FleetStore.create(2, CONFIG)
    app = GatewayApp(fleet, TokenTable.from_spec(SPEC))
    try:
        with GatewayServer(app) as server:
            admin = GatewayClient(server.address, "root-token")
            api.set_policy(ExecutionPolicy(
                executor="rpc", fleet_hosts=(dead,), fleet_retries=0,
                fleet_timeout=2.0, fleet_on_failure="raise"))
            with pytest.raises(GatewayHTTPError) as err:
                admin.audit()
            assert err.value.status == 503
            assert err.value.retryable
    finally:
        api.set_policy(None)
        close_connection_pools()
        reset_host_health()


# -- settings ------------------------------------------------------------------


def test_inline_token_env_beats_token_file(monkeypatch, tmp_path):
    spec_file = tmp_path / "tokens.txt"
    spec_file.write_text("file-tok=acme:r\n")
    monkeypatch.setenv(api.GATEWAY_TOKENS_ENV_VAR, "env-tok=acme:rw")
    monkeypatch.setenv(api.GATEWAY_TOKEN_FILE_ENV_VAR, str(spec_file))
    settings = GatewaySettings.resolve()
    assert settings.tokens_source == "env"
    assert settings.tokens.resolve("env-tok").grants["acme"].write
    with pytest.raises(Exception):
        settings.tokens.resolve("file-tok")


def test_token_file_used_when_no_inline_spec(monkeypatch, tmp_path):
    spec_file = tmp_path / "tokens.txt"
    spec_file.write_text("# fleet ops\nfile-tok=acme:r\n")
    monkeypatch.delenv(api.GATEWAY_TOKENS_ENV_VAR, raising=False)
    monkeypatch.setenv(api.GATEWAY_TOKEN_FILE_ENV_VAR, str(spec_file))
    settings = GatewaySettings.resolve()
    assert settings.tokens_source.startswith("token_file")
    assert settings.tokens.resolve("file-tok").grants["acme"].read


def test_no_credentials_refuse_to_start(monkeypatch):
    monkeypatch.delenv(api.GATEWAY_TOKENS_ENV_VAR, raising=False)
    monkeypatch.delenv(api.GATEWAY_TOKEN_FILE_ENV_VAR, raising=False)
    with pytest.raises(ConfigurationError, match="no gateway"):
        GatewaySettings.resolve()
    with pytest.raises(ConfigurationError, match="cannot read"):
        GatewaySettings.resolve(token_file="/definitely/not/a/file")


def test_bind_and_fleet_shape_resolution(monkeypatch):
    from repro.gateway.settings import GATEWAY_MEMBERS_ENV_VAR

    monkeypatch.setenv(api.GATEWAY_BIND_ENV_VAR, "0.0.0.0:9000")
    monkeypatch.setenv(GATEWAY_MEMBERS_ENV_VAR, "2")
    settings = GatewaySettings.resolve(tokens="tok1=acme:rw")
    assert (settings.host, settings.port) == ("0.0.0.0", 9000)
    assert settings.bind_source == "env"
    assert settings.members == 2
    fleet = settings.build_fleet()
    assert len(fleet.members) == 2
    assert fleet.members[0].audit_log is not None
    monkeypatch.setenv(GATEWAY_MEMBERS_ENV_VAR, "zero")
    with pytest.raises(ConfigurationError, match="integer"):
        GatewaySettings.resolve(tokens="tok1=acme:rw")


def test_check_tokens_subcommand(monkeypatch, capsys):
    from repro.gateway.__main__ import main

    monkeypatch.setenv(api.GATEWAY_TOKENS_ENV_VAR,
                       "tok1=acme:rw;tok2=admin")
    assert main(["check-tokens"]) == 0
    assert "2 principal(s)" in capsys.readouterr().out
    monkeypatch.setenv(api.GATEWAY_TOKENS_ENV_VAR, "broken")
    assert main(["check-tokens"]) == 2


# -- lifecycle -----------------------------------------------------------------


def test_draining_gateway_answers_retryable_503():
    fleet = FleetStore.create(2, CONFIG)
    app = GatewayApp(fleet, TokenTable.from_spec(SPEC))
    with GatewayServer(app) as server:
        client = GatewayClient(server.address, "acme-rw",
                               tenant="acme")
        client.put("/pre-drain", b"x")
        assert app.drain(timeout=5.0)  # empties immediately: idle
        with pytest.raises(GatewayHTTPError) as err:
            client.put("/post-drain", b"x")
        assert err.value.status == 503
        assert err.value.code == "draining"
        assert err.value.retryable


def test_closed_server_refuses_connections():
    fleet = FleetStore.create(2, CONFIG)
    app = GatewayApp(fleet, TokenTable.from_spec(SPEC))
    server = GatewayServer(app).start()
    address = server.address
    client = GatewayClient(address, "acme-rw", tenant="acme")
    client.put("/alive", b"x")
    server.close()
    client.close()
    with pytest.raises(GatewayConnectionError):
        GatewayClient(address, "acme-rw", tenant="acme",
                      timeout=2.0).healthz()
    server.close()  # idempotent


def test_error_body_shape_is_stable(stack):
    server, _fleet, _twin = stack
    import http.client

    conn = http.client.HTTPConnection(*server.address.split(":"))
    conn.request("GET", "/v1/t/acme/get?path=/x",
                 headers={"Authorization": "Bearer acme-rw"})
    response = conn.getresponse()
    body = json.loads(response.read())
    assert response.status == 404
    assert set(body) == {"error"}
    assert set(body["error"]) == {"code", "message", "retryable"}
    conn.close()


# -- client retries (opt-in) ----------------------------------------------------


class _FlakyHandler:
    """A stub gateway that fails the first ``fail_n`` requests."""


@pytest.fixture()
def flaky_server():
    import http.server
    import threading

    state = {"requests": 0, "fail_n": 0, "status": 503,
             "retryable": True, "retry_after": "0"}

    class Handler(http.server.BaseHTTPRequestHandler):
        def log_message(self, fmt, *args):
            pass

        def _serve(self):
            state["requests"] += 1
            length = int(self.headers.get("Content-Length") or 0)
            if length:
                self.rfile.read(length)
            if state["requests"] <= state["fail_n"]:
                body = json.dumps({"error": {
                    "code": "fleet_unavailable", "message": "down",
                    "retryable": state["retryable"]}}).encode()
                self.send_response(state["status"])
                if state["retry_after"] is not None:
                    self.send_header("Retry-After", state["retry_after"])
            else:
                body = json.dumps({"status": "ok"}).encode()
                self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        do_GET = _serve
        do_POST = _serve

    httpd = http.server.ThreadingHTTPServer(("127.0.0.1", 0), Handler)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    try:
        yield f"{host}:{port}", state
    finally:
        httpd.shutdown()
        httpd.server_close()


def test_client_retries_retryable_503(flaky_server):
    address, state = flaky_server
    state["fail_n"] = 2
    client = GatewayClient(address, "t", retries=2, backoff=0.001)
    with client:
        assert client.healthz() == {"status": "ok"}
    assert state["requests"] == 3


def test_client_without_retries_fails_fast(flaky_server):
    address, state = flaky_server
    state["fail_n"] = 1
    client = GatewayClient(address, "t")
    with client:
        with pytest.raises(GatewayHTTPError) as err:
            client.healthz()
    assert err.value.retryable
    assert err.value.retry_after == 0.0  # parsed from the header
    assert state["requests"] == 1


def test_client_never_retries_non_retryable(flaky_server):
    address, state = flaky_server
    state.update(fail_n=5, status=409, retryable=False,
                 retry_after=None)
    client = GatewayClient(address, "t", retries=3, backoff=0.001)
    with client:
        with pytest.raises(GatewayHTTPError) as err:
            client.healthz()
    assert err.value.status == 409
    assert err.value.retry_after is None
    assert state["requests"] == 1


def test_client_put_not_retried_unless_asked(flaky_server):
    address, state = flaky_server
    state["fail_n"] = 1
    client = GatewayClient(address, "t", tenant="acme",
                           retries=3, backoff=0.001)
    with client:
        with pytest.raises(GatewayHTTPError):
            client.put("/x", b"d")
    assert state["requests"] == 1

    state.update(requests=0, fail_n=1)
    client = GatewayClient(address, "t", tenant="acme", retries=3,
                           retry_put=True, backoff=0.001)
    from repro.gateway.schemas import SchemaError

    with client:
        # the stub's 200 body is not an ObjectInfo: reaching the
        # schema decoder proves the 503 was retried through to a 200
        with pytest.raises(SchemaError):
            client.put("/x", b"d")
    assert state["requests"] == 2


def test_client_retries_exhausted_raises_last_error(flaky_server):
    address, state = flaky_server
    state["fail_n"] = 10
    client = GatewayClient(address, "t", retries=2, backoff=0.001)
    with client:
        with pytest.raises(GatewayHTTPError) as err:
            client.healthz()
    assert err.value.status == 503
    assert state["requests"] == 3


def test_client_rejects_negative_retries():
    from repro.gateway import GatewayError

    with pytest.raises(GatewayError):
        GatewayClient("127.0.0.1:1", "t", retries=-1)


# -- evidence search over HTTP -------------------------------------------------


def test_search_round_trip_matches_app_index(stack):
    from repro.search import Query

    server, _fleet, _twin = stack
    client = GatewayClient(server.address, "acme-rw", tenant="acme")
    admin = GatewayClient(server.address, "root-token")

    client.put("/inv/alpha", b"alpha entry")
    client.put("/inv/beta", b"beta entry")
    client.seal("/inv/alpha", timestamp=9)
    report = admin.audit()
    assert report.clean
    # typed per-member verdict records survive the HTTP round trip
    assert report.member_records
    assert all(not r.report.label.startswith("m")
               for r in report.member_records)

    result = client.search("", facets=("sealed", "verdict"))
    assert result.total == 2
    assert dict(result.facets["sealed"]) == {"false": 1, "true": 1}
    assert ("intact", 1) in result.facets["verdict"]

    # the wire result is == the app index queried with the same
    # forced-tenant query the handler builds
    expected = server.app.index.search(
        Query(terms=(), filters=(("tenant", "acme"),)),
        facets=("sealed", "verdict"))
    assert result == expected


def test_search_highlights_evidence_text(stack):
    server, _fleet, _twin = stack
    client = GatewayClient(server.address, "acme-rw", tenant="acme")
    client.export_evidence(
        "case-11", {"note.txt": b"a forged ledger line"}, timestamp=5)
    result = client.search("forged", highlight=True,
                           fragment_size=30, fragment_count=1)
    assert result.total == 1
    hit = result.hits[0]
    assert hit.doc_id.startswith("ev:acme--case-11/")
    assert any("<em>forged</em>" in frag for frag in hit.highlights)


def test_search_is_tenant_confined(stack):
    server, _fleet, _twin = stack
    acme = GatewayClient(server.address, "acme-rw", tenant="acme")
    globex = GatewayClient(server.address, "globex-rw",
                           tenant="globex")
    acme.put("/doc", b"acme secret")
    globex.put("/doc", b"globex secret")

    mine = acme.search("")
    assert {h.fields["tenant"] for h in mine.hits} == {"acme"}
    # a smuggled tenant filter is stripped and replaced: globex
    # documents never appear in acme results
    smuggled = acme.search("tenant:globex")
    assert {h.fields["tenant"] for h in smuggled.hits} == {"acme"}
    theirs = globex.search("")
    assert {h.fields["tenant"] for h in theirs.hits} == {"globex"}


def test_standing_alert_lifecycle_over_http(stack):
    from repro.security.attacks import mwb_data

    server, fleet, _twin = stack
    client = GatewayClient(server.address, "acme-rw", tenant="acme")
    admin = GatewayClient(server.address, "root-token")

    standing = admin.register_alert("tamper", "tampered:true")
    assert (standing.name, standing.query) == ("tamper",
                                               "tampered:true")
    client.put("/vault/x", b"sealed payload")
    client.seal("/vault/x", timestamp=3)
    assert admin.audit().clean
    _standing, alerts = admin.alerts()
    assert alerts == []

    path = confine("acme", "/vault/x")
    member = fleet.members[fleet.route(path)]
    mwb_data(member.device, member.receipts[path].line_start)
    assert not admin.audit().clean

    _standing, alerts = admin.alerts()
    assert [a.doc_id for a in alerts] == [f"obj:{path}"]
    assert alerts[0].name == "tamper"
    admin.audit()  # unchanged verdict: no re-fire over HTTP either
    assert len(admin.alerts()[1]) == 1

    assert admin.unregister_alert("tamper") is True
    standing, alerts = admin.alerts()
    assert standing == [] and len(alerts) == 1  # alerts are retained


def test_search_rejects_bad_parameters(stack):
    server, _fleet, _twin = stack
    client = GatewayClient(server.address, "acme-rw", tenant="acme")
    with pytest.raises(GatewayHTTPError) as err:
        client.search(limit=0)
    assert err.value.status == 400
    with pytest.raises(GatewayHTTPError) as err:
        client.search(fragment_size=0)
    assert err.value.status == 400
