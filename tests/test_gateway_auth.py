"""Gateway authorization: the token grammar and the decision matrix.

Two layers, no sockets anywhere:

* **grammar** — token-spec parsing (entries, comments, duplicate
  grants widening, duplicate tokens rejected, expiry elements) and
  tenant-namespace confinement (traversal cannot leave the prefix);
* **matrix** — the full authorization decision table driven straight
  through :meth:`GatewayApp.handle`: cross-tenant access answers the
  *same 404 body* as a missing object (tenant roster not probeable),
  insufficient permission on a granted tenant answers 403, and every
  credential failure (absent / unknown / expired token) answers one
  indistinguishable 401.
"""

from __future__ import annotations

import json

import pytest

from repro.api.fleet import FleetStore
from repro.api.store import StoreConfig
from repro.errors import ConfigurationError
from repro.gateway import (
    GatewayApp,
    Grant,
    PathError,
    TokenTable,
    confine,
    evidence_case,
    parse_token_spec,
)
from repro.gateway.auth import redact

SPEC = """
# ops
root-token=admin
acme-rw=acme:rw
acme-ro=acme:r
globex-rw=globex:w;both-ro=acme:r,globex:r
stale-tok=acme:rw,expires:1500000000
"""


# -- token grammar -------------------------------------------------------------


def test_spec_parses_entries_comments_and_semicolons():
    table = parse_token_spec(SPEC)
    assert set(table) == {"root-token", "acme-rw", "acme-ro",
                          "globex-rw", "both-ro", "stale-tok"}
    assert table["root-token"].admin
    assert table["acme-rw"].grants["acme"] == Grant("acme", True, True)
    assert table["both-ro"].grants.keys() == {"acme", "globex"}


def test_write_implies_read():
    table = parse_token_spec("wtok=acme:w")
    grant = table["wtok"].grants["acme"]
    assert grant.read and grant.write


def test_duplicate_tenant_grants_widen_never_narrow():
    table = parse_token_spec("tok1=acme:w,acme:r")
    assert table["tok1"].grants["acme"] == Grant("acme", True, True)


def test_duplicate_tokens_rejected():
    with pytest.raises(ConfigurationError, match="duplicate"):
        parse_token_spec("tok1=acme:r;tok1=globex:r")


def test_token_granting_nothing_rejected():
    with pytest.raises(ConfigurationError, match="grants nothing"):
        parse_token_spec("tok1=")


def test_short_or_spaced_tokens_rejected():
    with pytest.raises(ConfigurationError, match="whitespace"):
        parse_token_spec("abc=acme:r")
    with pytest.raises(ConfigurationError, match="whitespace"):
        parse_token_spec("a bcd=acme:r")


def test_bad_grant_elements_rejected():
    with pytest.raises(ConfigurationError, match="bad permissions"):
        parse_token_spec("tok1=acme:x")
    with pytest.raises(ConfigurationError, match="bad grant element"):
        parse_token_spec("tok1=acme")
    with pytest.raises(ConfigurationError, match="bad tenant name"):
        parse_token_spec("tok1=.hidden:r")
    with pytest.raises(ConfigurationError, match="expires"):
        parse_token_spec("tok1=acme:r,expires:soon")


def test_empty_table_refused():
    with pytest.raises(ConfigurationError, match="refuses to start"):
        TokenTable({})


def test_redaction_never_echoes_the_full_token():
    assert "secret" not in redact("secretcredential")


def test_expired_unknown_and_missing_are_indistinguishable():
    from repro.gateway import AuthError

    table = TokenTable.from_spec(SPEC)
    messages = set()
    for token, now in ((None, None), ("never-issued", None),
                      ("stale-tok", 1500000001)):
        with pytest.raises(AuthError) as err:
            table.resolve(token, now=now)
        messages.add(str(err.value))
    assert len(messages) == 1
    # not yet expired → resolves
    assert table.resolve("stale-tok", now=1499999999).grants["acme"]


# -- namespace confinement -----------------------------------------------------


def test_confine_maps_into_tenant_prefix():
    assert confine("acme", "/ledger/2026") == "/t/acme/ledger/2026"


@pytest.mark.parametrize("path", [
    "ledger",              # not absolute
    "/",                   # the root is not an object
    "/a/../../t/globex/x",  # traversal
    "/a//b",               # empty segment
    "/a/" + "x" * 200,     # over-long segment
    "/a/b c",              # whitespace smuggling
])
def test_confine_rejects_escapes(path):
    with pytest.raises(PathError):
        confine("acme", path)


def test_evidence_case_is_tenant_prefixed_and_flat():
    assert evidence_case("acme", "case-7") == "acme--case-7"
    with pytest.raises(PathError):
        evidence_case("acme", "a/b")


# -- the decision matrix through the app ---------------------------------------


@pytest.fixture()
def app():
    fleet = FleetStore.create(2, StoreConfig(total_blocks=128,
                                             audit_log=True))
    return GatewayApp(fleet, TokenTable.from_spec(SPEC))


def _call(app, method, path, token=None, body=None):
    headers = {}
    if token is not None:
        headers["Authorization"] = f"Bearer {token}"
    raw = json.dumps(body).encode() if body is not None else b""
    return app.handle(method, path, headers, raw)


def _seed(app, tenant, path="/doc"):
    _call(app, "POST", f"/v1/t/{tenant}/put", "root-token",
          {"path": path, "data": ""})


def test_healthz_needs_no_token(app):
    status, _headers, body = _call(app, "GET", "/v1/healthz")
    assert (status, body["status"]) == (200, "ok")


def test_missing_token_is_401_with_challenge(app):
    status, headers, body = _call(app, "GET", "/v1/t/acme/get?path=/x")
    assert status == 401
    assert headers["WWW-Authenticate"] == "Bearer"
    assert body["error"]["code"] == "unauthorized"


def test_unknown_and_expired_tokens_answer_identically(app):
    responses = {
        token: _call(app, "GET", "/v1/t/acme/get?path=/x", token)
        for token in ("never-issued", "stale-tok")
    }
    assert len({json.dumps(r) for r in responses.values()}) == 1
    assert responses["stale-tok"][0] == 401


def test_cross_tenant_read_matches_missing_object_byte_for_byte(app):
    _seed(app, "acme")
    # globex-rw holds no grant on acme: the response must be
    # indistinguishable from asking for an object that does not exist
    cross = _call(app, "GET", "/v1/t/acme/get?path=/doc", "globex-rw")
    missing = _call(app, "GET", "/v1/t/acme/get?path=/nope",
                    "acme-rw")
    assert cross[0] == missing[0] == 404
    assert cross[2] == missing[2]


@pytest.mark.parametrize("method,op,body", [
    ("POST", "put", {"path": "/x", "data": ""}),
    ("POST", "seal", {"path": "/x"}),
    ("POST", "seal_many", {"paths": ["/x"]}),
    ("POST", "export_evidence",
     {"case": "c1", "exhibits": {"a": ""}}),
    ("GET", "get?path=/x", None),
    ("GET", "verify?path=/x", None),
])
def test_no_grant_hides_the_tenant_on_every_op(app, method, op, body):
    status, _headers, out = _call(app, method, f"/v1/t/acme/{op}",
                                  "globex-rw", body)
    assert status == 404
    assert out["error"]["code"] == "not_found"


def test_reader_cannot_write_403(app):
    _seed(app, "acme")
    for op, body in (("put", {"path": "/y", "data": ""}),
                     ("seal", {"path": "/doc"}),
                     ("seal_many", {"paths": ["/doc"]}),
                     ("export_evidence",
                      {"case": "c1", "exhibits": {"a": ""}})):
        status, _headers, out = _call(app, "POST",
                                      f"/v1/t/acme/{op}",
                                      "acme-ro", body)
        assert status == 403, op
        assert out["error"]["code"] == "forbidden"
    # …while reads still work
    status, _headers, _out = _call(app, "GET",
                                   "/v1/t/acme/get?path=/doc",
                                   "acme-ro")
    assert status == 200


def test_writer_allowed_and_write_implies_read(app):
    status, _h, _b = _call(app, "POST", "/v1/t/globex/put",
                           "globex-rw", {"path": "/w", "data": ""})
    assert status == 200
    status, _h, _b = _call(app, "GET",
                           "/v1/t/globex/get?path=/w", "globex-rw")
    assert status == 200


def test_admin_reaches_every_tenant(app):
    for tenant in ("acme", "globex", "brand-new"):
        status, _h, _b = _call(app, "POST", f"/v1/t/{tenant}/put",
                               "root-token",
                               {"path": "/a", "data": ""})
        assert status == 200


@pytest.mark.parametrize("method,op", [
    ("GET", "audit"), ("GET", "history"), ("GET", "describe"),
    ("GET", "alerts"), ("POST", "format"),
])
def test_admin_endpoints_403_for_tenant_tokens(app, method, op):
    status, _h, body = _call(app, method, f"/v1/admin/{op}",
                             "acme-rw", {} if method == "POST" else None)
    assert status == 403
    assert body["error"]["code"] == "forbidden"
    status, _h, _b = _call(app, method, f"/v1/admin/{op}",
                           "root-token", {} if method == "POST" else None)
    assert status == 200


def test_tenant_cannot_smuggle_a_path_out_of_its_namespace(app):
    _seed(app, "globex", "/secret")
    status, _h, body = _call(app, "POST", "/v1/t/acme/put", "acme-rw",
                             {"path": "/../globex/steal", "data": ""})
    assert status == 400
    # and reads with traversal are equally rejected, not routed
    status, _h, _b = _call(
        app, "GET", "/v1/t/acme/get?path=/../../t/globex/secret",
        "acme-rw")
    assert status == 400


def test_two_tenants_same_path_are_distinct_objects(app):
    for tenant, token, payload in (("acme", "acme-rw", "AAA"),
                                   ("globex", "globex-rw", "GGG")):
        import base64

        status, _h, _b = _call(
            app, "POST", f"/v1/t/{tenant}/put", token,
            {"path": "/report",
             "data": base64.b64encode(payload.encode()).decode()})
        assert status == 200
    status, _h, body = _call(app, "GET",
                             "/v1/t/acme/get?path=/report", "both-ro")
    import base64

    assert base64.b64decode(body["data"]) == b"AAA"


def test_grant_resolution_precedence_last_write_wins_union(app):
    # both-ro holds r on both tenants: reads allowed, writes forbidden
    _seed(app, "acme")
    status, _h, _b = _call(app, "GET",
                           "/v1/t/acme/get?path=/doc", "both-ro")
    assert status == 200
    status, _h, _b = _call(app, "POST", "/v1/t/acme/put", "both-ro",
                           {"path": "/z", "data": ""})
    assert status == 403


def test_conflict_and_validation_statuses(app):
    _seed(app, "acme")
    status, _h, body = _call(app, "POST", "/v1/t/acme/put", "acme-rw",
                             {"path": "/doc", "data": ""})
    assert status == 409 and body["error"]["code"] == "conflict"
    status, _h, body = _call(app, "POST", "/v1/t/acme/put", "acme-rw",
                             {"data": ""})
    assert status == 400
    status, _h, body = _call(app, "POST", "/v1/t/acme/put", "acme-rw",
                             {"path": "/ok", "data": "!!!not-b64"})
    assert status == 400
    status, _h, body = _call(app, "POST", "/v1/t/acme/seal",
                             "acme-rw", {"path": "/doc",
                                         "timestamp": "now"})
    assert status == 400
    status, _h, body = _call(app, "GET", "/v1/nope/где", "acme-rw")
    assert status == 404


def test_search_without_grant_matches_missing_object_byte_for_byte(app):
    _seed(app, "acme")
    # globex-rw holds no grant on acme: probing the search endpoint
    # must be indistinguishable from a missing object
    cross = _call(app, "GET", "/v1/t/acme/search?q=doc", "globex-rw")
    missing = _call(app, "GET", "/v1/t/acme/get?path=/nope",
                    "acme-rw")
    assert cross[0] == missing[0] == 404
    assert cross[2] == missing[2]


def test_alert_registration_is_admin_only_and_validated(app):
    denied = _call(app, "POST", "/v1/admin/alerts", "acme-rw",
                   {"name": "t", "query": "tampered:true"})
    assert denied[0] == 403

    bad = _call(app, "POST", "/v1/admin/alerts", "root-token",
                {"name": "t"})
    assert bad[0] == 400  # query is required

    ok = _call(app, "POST", "/v1/admin/alerts", "root-token",
               {"name": "t", "query": "tampered:true",
                "tenant": "acme"})
    assert ok[0] == 200
    assert ok[2] == {"name": "t", "query": "tampered:true",
                     "tenant": "acme"}

    gone = _call(app, "POST", "/v1/admin/alerts", "root-token",
                 {"unregister": "t"})
    assert gone[0] == 200 and gone[2]["unregistered"] is True
    listing = _call(app, "GET", "/v1/admin/alerts", "root-token")
    assert listing[0] == 200
    assert listing[2] == {"standing": [], "alerts": []}
