"""Cross-layer integration tests: whole-stack scenarios."""

import pytest

from repro.device.sero import DeviceConfig, SERODevice, VerifyStatus
from repro.fs.bimodal import bimodality
from repro.fs.cleaner import run_cleaner
from repro.fs.fsck import deep_scan, fsck
from repro.fs.lfs import FSConfig, SeroFS
from repro.integrity.evidence import EvidenceBag
from repro.medium.medium import MediumConfig
from repro.security import attacks
from repro.workloads.database import SimpleDatabase
from repro.workloads.synthetic import SyntheticWorkload, run_workload


def test_full_lifecycle_database_audit():
    """The paper's Section 1 story end to end: live DB, snapshot,
    tamper attempt, audit."""
    device = SERODevice.create(1024)
    fs = SeroFS.format(device)
    db = SimpleDatabase(fs)
    for rid in range(20):
        db.put(rid, f"record-{rid}".encode())
    db.snapshot("q1-audit", timestamp=100)
    # business continues: the live table keeps changing
    db.put(3, b"UPDATED")
    # a dishonest insider rewrites the snapshot's blocks raw
    line_start = fs.line_of_ino[fs.stat("/db/snapshot-q1-audit").ino]
    attacks.mwb_data(device, line_start)
    # the auditor's sweep finds it
    assert db.verify_snapshot("q1-audit").status is VerifyStatus.HASH_MISMATCH
    # and the untouched live table still works
    assert db.get(3) == b"UPDATED"


def test_aging_with_heats_then_remount_then_fsck():
    device = SERODevice.create(1024)
    fs = SeroFS.format(device)
    workload = SyntheticWorkload(n_files=10, n_ops=80, mean_size=1500,
                                 p_heat=0.1, seed=12)
    run_workload(fs, workload)
    run_cleaner(fs, max_segments=8)
    fs.checkpoint()
    remounted = SeroFS.mount(device)
    report = fsck(remounted)
    assert report.clean, report.errors
    for label, result in remounted.verify_all_files().items():
        assert result.status is VerifyStatus.INTACT, label


def test_forensic_story_directory_wipe_and_bulk_erase():
    """Section 5.2's worst case: wipe the index, then degauss."""
    device = SERODevice.create(512)
    fs = SeroFS.format(device)
    bag = EvidenceBag(fs, "/investigation")
    bag.add("keylog", b"stolen keystrokes " * 40)
    bag.add("netflow", b"203.0.113.7 exfil " * 40)
    bag.close()
    attacks.clear_directory(fs)
    # recovery before the eraser arrives
    scan = deep_scan(device)
    assert scan.intact_count == 3  # 2 exhibits + manifest
    # the attacker escalates to a bulk eraser
    attacks.bulk_erase(device)
    scan2 = deep_scan(device)
    # contents are gone, but every line still announces tampering
    assert len(scan2.recovered) + len(scan2.unparseable_lines) >= 1
    assert all(f.verification.tamper_evident for f in scan2.recovered)


def test_defective_device_end_to_end():
    device = SERODevice.create(
        256, medium_config=MediumConfig(switching_sigma=0.12,
                                        write_field=1.5, seed=20))
    device.format()
    assert device.bad_blocks  # the medium really is imperfect
    fs = SeroFS.format(device)
    fs.create("/data", b"works despite defects " * 30)
    assert fs.read("/data") == b"works despite defects " * 30
    fs.heat_file("/data")
    assert fs.verify_file("/data").status is VerifyStatus.INTACT


def test_device_end_of_life():
    """Section 8: the device gradually becomes read-only."""
    device = SERODevice.create(256)
    fs = SeroFS.format(device)
    heated = 0
    from repro.errors import NoSpaceError

    try:
        for i in range(100):
            fs.create(f"/batch{i}", bytes([i]) * 2500)
            fs.heat_file(f"/batch{i}", timestamp=i)
            heated += 1
    except NoSpaceError:
        pass
    assert heated > 5
    assert fs.free_space_blocks() < 16
    # everything heated so far remains verifiable
    for label, result in fs.verify_all_files().items():
        assert result.status is VerifyStatus.INTACT, label


def test_bimodality_after_mixed_aging():
    fs = SeroFS.format(SERODevice.create(1024),
                       FSConfig(heat_placement="cluster"))
    workload = SyntheticWorkload(n_files=12, n_ops=60, mean_size=1200,
                                 p_heat=0.15, seed=31)
    run_workload(fs, workload)
    assert bimodality(fs).index > 0.7


def test_sha256_backends_agree_on_line_hash():
    from repro.crypto.sha256 import set_backend

    def build(backend):
        set_backend(backend)
        try:
            device = SERODevice.create(64)
            for pba in range(1, 4):
                device.write_block(pba, bytes([pba]) * 512)
            return device.heat_line(0, 4).line_hash
        finally:
            set_backend(None)  # unpin: defer to the execution policy

    assert build("pure") == build("hashlib")


def test_weakened_device_config_is_explicit():
    device = SERODevice.create(
        64, config=DeviceConfig(include_addresses_in_hash=False))
    for pba in range(1, 4):
        device.write_block(pba, b"\x01" * 512)
    device.heat_line(0, 4)
    assert device.verify_line(0).status is VerifyStatus.INTACT
