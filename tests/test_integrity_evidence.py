"""Evidence-bag tests (Section 8 forensics)."""

import pytest

from repro.device.sero import SERODevice, VerifyStatus
from repro.errors import IntegrityError
from repro.fs.lfs import SeroFS
from repro.integrity.evidence import EvidenceBag
from repro.security import attacks


@pytest.fixture
def bag(fs) -> EvidenceBag:
    return EvidenceBag(fs, "/case-42")


def test_add_seals_immediately(bag, fs):
    item = bag.add("exhibit-a", b"smoking gun " * 20)
    assert fs.stat("/case-42/exhibit-a").heated
    assert fs.device.verify_line(item.line_start).status is VerifyStatus.INTACT


def test_exhibits_readable_after_sealing(bag, fs):
    bag.add("log", b"intrusion at 03:14\n" * 10)
    assert fs.read("/case-42/log") == b"intrusion at 03:14\n" * 10


def test_close_writes_heated_manifest(bag, fs):
    bag.add("a", b"1")
    bag.add("b", b"2")
    manifest = bag.close()
    assert fs.stat("/case-42/MANIFEST").heated
    assert manifest.size > 0
    assert bag.is_intact()


def test_no_adds_after_close(bag):
    bag.close()
    with pytest.raises(IntegrityError):
        bag.add("late", b"z")


def test_double_close_rejected(bag):
    bag.close()
    with pytest.raises(IntegrityError):
        bag.close()


def test_audit_flags_tampering(bag, fs):
    item = bag.add("target", b"tamper me " * 30)
    bag.close()
    attacks.mwb_data(fs.device, item.line_start)
    audit = bag.audit()
    assert audit["target"].tamper_evident
    assert not bag.is_intact()
    # the manifest still proves what SHOULD be there
    assert audit["MANIFEST"].status is VerifyStatus.INTACT


def test_slash_in_name_rejected(bag):
    with pytest.raises(IntegrityError):
        bag.add("a/b", b"")


def test_items_listing(bag):
    bag.add("x", b"1")
    bag.add("y", b"2")
    assert [i.name for i in bag.items] == ["x", "y"]
