"""Fossilised index tests (Section 4.2)."""

import pytest

from repro.crypto.sha256 import sha256_digest
from repro.device.sero import SERODevice, VerifyStatus
from repro.errors import FossilSlotError, IntegrityError
from repro.integrity.fossil import SLOTS, FossilizedIndex, digit_path


@pytest.fixture
def index() -> FossilizedIndex:
    return FossilizedIndex(SERODevice.create(1024), arena_start=16,
                           arena_blocks=960)


def _hashes(n, tag=b"rec"):
    return [sha256_digest(i.to_bytes(4, "big"), tag) for i in range(n)]


def test_insert_and_contains(index):
    hashes = _hashes(20)
    for h in hashes:
        index.insert(h)
    assert all(index.contains(h) for h in hashes)


def test_absent_record_not_found(index):
    index.insert(sha256_digest(b"present"))
    assert not index.contains(sha256_digest(b"absent"))


def test_duplicate_insert_rejected(index):
    h = sha256_digest(b"once")
    index.insert(h)
    with pytest.raises(FossilSlotError):
        index.insert(h)


def test_path_is_deterministic():
    h = sha256_digest(b"path")
    assert list(digit_path(h))[:8] == list(digit_path(h))[:8]
    assert all(0 <= d < SLOTS for d in list(digit_path(h))[:16])


def test_nodes_seal_when_full(index):
    # insert until at least one node fills its 8 slots
    for h in _hashes(60):
        index.insert(h)
    assert index.sealed_nodes
    for result in index.verify_sealed().values():
        assert result.status is VerifyStatus.INTACT


def test_sealed_nodes_still_answer_lookups(index):
    hashes = _hashes(60)
    for h in hashes:
        index.insert(h)
    assert all(index.contains(h) for h in hashes)


def test_inserts_continue_below_sealed_nodes(index):
    hashes = _hashes(100)
    for h in hashes:
        index.insert(h)
    assert index.records == 100
    assert index.node_count > 1


def test_zero_hash_reserved(index):
    with pytest.raises(IntegrityError):
        index.insert(b"\x00" * 32)


def test_wrong_hash_size_rejected(index):
    with pytest.raises(IntegrityError):
        index.insert(b"short")


def test_rebuild_from_device(index):
    hashes = _hashes(60)
    for h in hashes:
        index.insert(h)
    sealed_before = set(index.sealed_nodes)
    records_before = index.records
    recovered = index.rebuild_from_device()
    assert recovered == index.node_count
    assert index.records == records_before
    assert set(index.sealed_nodes) == sealed_before
    assert all(index.contains(h) for h in hashes)


def test_arena_exhaustion():
    tiny = FossilizedIndex(SERODevice.create(64), arena_start=16,
                           arena_blocks=4)
    # root consumed 2 blocks; one child is possible, then exhaustion
    with pytest.raises(IntegrityError):
        for h in _hashes(200):
            tiny.insert(h)


def test_arena_alignment():
    with pytest.raises(IntegrityError):
        FossilizedIndex(SERODevice.create(64), arena_start=5, arena_blocks=10)
