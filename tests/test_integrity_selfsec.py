"""Self-securing storage / audit log tests (Section 8)."""

import pytest

from repro.device.sero import SERODevice, VerifyStatus
from repro.fs.fsck import deep_scan
from repro.fs.lfs import SeroFS
from repro.integrity.selfsec import AuditLog, SelfSecuringFS
from repro.security import attacks


@pytest.fixture
def log(big_fs) -> AuditLog:
    return AuditLog(big_fs, rotate_bytes=256)


def test_log_and_history(log):
    log.log(1, b"create /a")
    log.log(2, b"write /a 100")
    history = log.history()
    assert history == [(1, b"create /a"), (2, b"write /a 100")]


def test_rotation_heats_chunks(log, big_fs):
    for tick in range(40):
        log.log(tick, b"op %d padded to some length........" % tick)
    assert log.sealed_chunks
    for name in log.sealed_chunks:
        assert big_fs.stat(name).heated
    assert log.is_history_intact()


def test_history_spans_sealed_and_active(log):
    for tick in range(40):
        log.log(tick, b"instruction %04d and padding......." % tick)
    history = log.history()
    assert [t for t, _ in history] == list(range(40))


def test_rotate_empty_is_noop(log):
    assert log.rotate() is None


def test_tampered_chunk_detected(log, big_fs):
    for tick in range(40):
        log.log(tick, b"instruction %04d and padding......." % tick)
    name = log.sealed_chunks[0]
    ino = big_fs.stat(name).ino
    attacks.mwb_data(big_fs.device, big_fs.line_of_ino[ino])
    assert not log.is_history_intact()
    statuses = {n: r.status for n, r in log.verify().items()}
    assert statuses[name] is VerifyStatus.HASH_MISMATCH


def test_oversized_record_rejected(log):
    with pytest.raises(Exception):
        log.log(1, b"\x00" * 70000)


def test_self_securing_fs_logs_mutations(big_fs):
    ss = SelfSecuringFS(big_fs, rotate_bytes=128)
    ss.create("/doc", b"v1")
    ss.write("/doc", b"v2")
    ss.read("/doc")  # reads are not logged
    ss.unlink("/doc")
    ss.seal_log()
    ops = [rec.split()[0] for _t, rec in ss.audit.history()]
    assert ops == [b"create", b"write", b"unlink"]
    assert ss.audit.is_history_intact()


def test_log_survives_directory_wipe(big_fs):
    ss = SelfSecuringFS(big_fs, rotate_bytes=64)
    ss.create("/x", b"data")
    ss.write("/x", b"data2")
    ss.seal_log()
    n_chunks = len(ss.audit.sealed_chunks)
    attacks.clear_directory(big_fs)
    report = deep_scan(big_fs.device)
    recovered_logs = [f for f in report.recovered
                      if f.name_hint.startswith("log-")]
    assert len(recovered_logs) == n_chunks
    assert all(f.verification.status is VerifyStatus.INTACT
               for f in recovered_logs)
