"""Venti content-addressed store tests (Section 4.2)."""

import numpy as np
import pytest

from repro.device.sero import SERODevice, VerifyStatus
from repro.errors import IntegrityError, UnknownScoreError
from repro.integrity.venti import FANOUT, NODE_PAYLOAD, VentiStore, node_score


@pytest.fixture
def store() -> VentiStore:
    return VentiStore(SERODevice.create(512), arena_start=16,
                      arena_blocks=480)


def test_put_get_roundtrip(store):
    score = store.put(b"archival data")
    assert store.get(score) == b"archival data"


def test_scores_are_content_addresses(store):
    a = store.put(b"same")
    b = store.put(b"same")
    assert a == b  # dedup: identical content, identical address
    assert store.blocks_used() <= 2


def test_different_content_different_scores(store):
    assert store.put(b"a") != store.put(b"b")


def test_unknown_score_rejected(store):
    with pytest.raises(UnknownScoreError):
        store.get(b"\x00" * 32)


def test_oversized_leaf_rejected(store):
    with pytest.raises(IntegrityError):
        store.put(b"\x00" * (NODE_PAYLOAD + 1))


def test_stream_roundtrip_small(store):
    assert store.read_stream(store.put_stream(b"tiny")) == b"tiny"


def test_stream_roundtrip_empty(store):
    assert store.read_stream(store.put_stream(b"")) == b""


def test_stream_roundtrip_multilevel(store):
    # force at least two pointer levels: > FANOUT leaves
    data = bytes(np.random.default_rng(1).integers(
        0, 256, NODE_PAYLOAD * (FANOUT + 3), dtype=np.uint8))
    root = store.put_stream(data)
    assert store.read_stream(root) == data


def test_verify_tree_intact(store):
    root = store.put_stream(b"x" * 3000)
    assert store.verify_tree(root) == []


def test_verify_tree_detects_node_tampering(store):
    data = b"y" * 3000
    root = store.put_stream(data)
    # overwrite one leaf's block behind the store's back
    leaf_score = store.put(data[:NODE_PAYLOAD])
    pba, _ = store._index[leaf_score]
    store.device.write_block(pba, b"\x00" * 512)
    bad = store.verify_tree(root)
    assert leaf_score in bad


def test_get_detects_score_mismatch(store):
    score = store.put(b"check me")
    pba, _ = store._index[score]
    forged = b"FORGED" + b"\x00" * 506
    store.device.write_block(pba, forged)
    with pytest.raises((IntegrityError, Exception)):
        store.get(score)


def test_seal_heats_a_line(store):
    root = store.put_stream(b"seal target " * 10)
    start = store.seal(root, timestamp=9)
    assert store.verify_sealed(root).status is VerifyStatus.INTACT
    assert store.device.is_block_heated(start)


def test_seal_idempotent(store):
    root = store.put_stream(b"idem")
    assert store.seal(root) == store.seal(root)


def test_sealed_root_protects_hierarchy(store):
    # the paper's point: heating the root secures the whole tree,
    # because every child is reachable only through verified scores
    data = b"ledger" * 500
    root = store.put_stream(data)
    store.seal(root)
    assert store.read_stream(root) == data
    assert store.verify_tree(root) == []
    # tamper any node: the walk flags it even though only the root is RO
    any_leaf = store.put(data[:NODE_PAYLOAD])
    pba, _ = store._index[any_leaf]
    store.device.write_block(pba, b"\xff" * 512)
    assert store.verify_tree(root)


def test_snapshot_creates_sealed_records(store):
    root = store.snapshot("monday", b"daily state " * 20, timestamp=1)
    assert store.read_stream(root) == b"daily state " * 20
    assert len(store.sealed_scores) >= 2  # record + root


def test_verify_sealed_requires_seal(store):
    score = store.put(b"not sealed")
    with pytest.raises(IntegrityError):
        store.verify_sealed(score)


def test_arena_exhaustion(

):
    store = VentiStore(SERODevice.create(64), arena_start=16, arena_blocks=4)
    store.put(b"1")
    store.put(b"2")
    store.put(b"3")
    store.put(b"4")
    with pytest.raises(IntegrityError):
        store.put(b"5")


def test_arena_alignment_required():
    with pytest.raises(IntegrityError):
        VentiStore(SERODevice.create(64), arena_start=3, arena_blocks=10)


def test_node_score_domain_separation():
    assert node_score(1, b"payload") != node_score(2, b"payload")
