"""PatternedMedium behaviour tests: the Fig 2 physics contract."""

import numpy as np
import pytest

from repro.errors import DotAddressError
from repro.medium.dot import BitState, classify
from repro.medium.geometry import MediumGeometry
from repro.medium.medium import MediumConfig, PatternedMedium


@pytest.fixture
def medium() -> PatternedMedium:
    geom = MediumGeometry(cols=64, rows=4, dots_per_block=16)
    return PatternedMedium(geom)


def test_initial_state_all_zero(medium):
    assert medium.read_mag(0) == 0
    assert not medium.is_heated(0)
    assert medium.heated_count() == 0


def test_mwb_mrb_roundtrip(medium):
    medium.write_mag(5, 1)
    assert medium.read_mag(5) == 1
    medium.write_mag(5, 0)
    assert medium.read_mag(5) == 0


def test_mwb_rejects_non_binary(medium):
    with pytest.raises(ValueError):
        medium.write_mag(0, 2)


def test_heat_is_irreversible(medium):
    medium.heat_dot(7)
    assert medium.is_heated(7)
    medium.write_mag(7, 1)  # no effect: nothing latches
    assert medium.is_heated(7)
    # there is deliberately no API that could restore sharpness
    assert not hasattr(medium, "unheat_dot")
    assert not hasattr(medium, "restore_dot")


def test_heated_dot_reads_randomly(medium):
    medium.heat_dot(3)
    reads = {medium.read_mag(3) for _ in range(64)}
    assert reads == {0, 1}  # "a more or less random result"


def test_heated_dot_ignores_writes(medium):
    medium.heat_dot(4)
    medium.write_mag(4, 1)
    # writes don't bias the channel: reads remain random over many trials
    values = [medium.read_mag(4) for _ in range(128)]
    assert 0.2 < np.mean(values) < 0.8


def test_dot_view_and_classification(medium):
    medium.write_mag(1, 1)
    view = medium.dot(1)
    assert view.state is BitState.ONE
    assert str(view) == "1"
    medium.heat_dot(1)
    assert medium.dot(1).state is BitState.HEATED
    assert classify(1, 0.0) is BitState.HEATED


def test_out_of_range_access(medium):
    with pytest.raises(DotAddressError):
        medium.read_mag(10_000)
    with pytest.raises(DotAddressError):
        medium.heat_dot(-1)


def test_span_roundtrip(medium):
    bits = [i % 2 for i in range(16)]
    medium.write_mag_span(16, bits)
    assert medium.read_mag_span(16, 32).tolist() == bits


def test_span_with_heated_dots_randomises_those_only(medium):
    bits = [1] * 16
    medium.write_mag_span(0, bits)
    medium.heat_dot(2)
    zeros_seen = False
    for _ in range(32):
        out = medium.read_mag_span(0, 16)
        assert all(out[i] == 1 for i in range(16) if i != 2)
        if out[2] == 0:
            zeros_seen = True
    assert zeros_seen


def test_span_validation(medium):
    with pytest.raises(DotAddressError):
        medium.read_mag_span(0, 10_000)
    with pytest.raises(ValueError):
        medium.write_mag_span(0, [0, 1, 2])


def test_heat_span_pattern(medium):
    pattern = [True, False] * 8
    medium.heat_span(0, 16, pattern)
    heated = medium.image_heated(range(16))
    assert heated.tolist() == pattern


def test_heat_span_all(medium):
    medium.heat_span(32, 40)
    assert medium.image_heated(range(32, 40)).all()


def test_bulk_erase_clears_magnetics_keeps_heat(medium):
    medium.write_mag_span(0, [1] * 16)
    medium.heat_dot(1)
    medium.bulk_erase()
    # magnetic data gone
    assert medium.read_mag(0) == 0
    # but the heated pattern survives: the Section 5.2 evidence
    assert medium.is_heated(1)


def test_forensic_imaging(medium):
    medium.heat_dot(10)
    medium.heat_dot(20)
    image = medium.image_heated()
    assert image[10] and image[20]
    assert image.sum() == 2


def test_collateral_heating_damages_neighbors():
    geom = MediumGeometry(cols=64, rows=4, dots_per_block=16)
    config = MediumConfig(collateral_heating=True)
    medium = PatternedMedium(geom, config)
    center = geom.dot_index(2, 32)
    before = [medium.sharpness_of(n) for n in geom.neighbors(center)]
    medium.heat_dot(center)
    after = [medium.sharpness_of(n) for n in geom.neighbors(center)]
    assert medium.is_heated(center)
    assert all(a <= b for a, b in zip(after, before))


def test_operation_counters(medium):
    medium.read_mag(0)
    medium.write_mag(0, 1)
    medium.heat_dot(0)
    assert medium.counters["mrb"] == 1
    assert medium.counters["mwb"] == 1
    assert medium.counters["heat"] == 1


def test_switching_field_defects_make_dots_unwritable():
    geom = MediumGeometry(cols=64, rows=16, dots_per_block=16)
    config = MediumConfig(switching_sigma=0.3, write_field=1.5, seed=11)
    medium = PatternedMedium(geom, config)
    unwritable = sum(1 for i in range(geom.total_dots)
                     if not medium.is_writable(i))
    assert 0 < unwritable < geom.total_dots // 2
