"""Format-time defect scan tests (bad blocks vs heated blocks)."""

import pytest

from repro.medium.defects import defective_dots_in_block, scan_for_defects
from repro.medium.geometry import MediumGeometry
from repro.medium.medium import MediumConfig, PatternedMedium


def _medium(sigma: float, seed: int = 5) -> PatternedMedium:
    geom = MediumGeometry(cols=64, rows=8, dots_per_block=16)
    return PatternedMedium(geom, MediumConfig(switching_sigma=sigma,
                                              write_field=1.0, seed=seed))


def test_perfect_medium_has_no_bad_blocks():
    report = scan_for_defects(_medium(0.0))
    assert not report.bad_blocks
    assert report.defective_dots == 0
    assert report.bad_fraction == 0.0


def test_defective_medium_finds_bad_blocks():
    report = scan_for_defects(_medium(0.5), tolerance=1)
    assert report.defective_dots > 0
    assert report.bad_blocks
    assert 0.0 < report.bad_fraction <= 1.0


def test_tolerance_absorbs_isolated_defects():
    medium = _medium(0.3)
    strict = scan_for_defects(medium, tolerance=0)
    lax = scan_for_defects(medium, tolerance=8)
    assert len(lax.bad_blocks) <= len(strict.bad_blocks)


def test_heated_blocks_not_misinterpreted_as_bad():
    # Section 3: "a heated block should not be misinterpreted as a bad
    # block" — the scan runs at format time, before heating; here we
    # check the ground-truth helper excludes heated dots.
    medium = _medium(0.0)
    medium.heat_dot(3)
    assert defective_dots_in_block(medium, 0) == []


def test_scan_leaves_medium_erased():
    medium = _medium(0.0)
    scan_for_defects(medium)
    assert medium.read_mag_span(0, 64).sum() == 0


def test_scan_counts_blocks():
    report = scan_for_defects(_medium(0.0))
    assert report.scanned_blocks == 32
