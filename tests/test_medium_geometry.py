"""Dot-matrix geometry and physical addressing tests."""

import pytest

from repro.errors import ConfigurationError, DotAddressError
from repro.medium.geometry import MediumGeometry, geometry_for_blocks


@pytest.fixture
def geom() -> MediumGeometry:
    return MediumGeometry(cols=40, rows=5, dots_per_block=10)


def test_totals(geom):
    assert geom.total_dots == 200
    assert geom.blocks_per_row == 4
    assert geom.total_blocks == 20


def test_dot_position_roundtrip(geom):
    for index in (0, 39, 40, 199):
        row, col = geom.dot_position(index)
        assert geom.dot_index(row, col) == index


def test_dot_position_out_of_range(geom):
    with pytest.raises(DotAddressError):
        geom.dot_position(200)
    with pytest.raises(DotAddressError):
        geom.dot_index(5, 0)


def test_block_span(geom):
    assert geom.block_span(0) == (0, 10)
    assert geom.block_span(19) == (190, 200)
    with pytest.raises(DotAddressError):
        geom.block_span(20)


def test_block_of_dot_inverse_of_span(geom):
    for pba in range(geom.total_blocks):
        start, end = geom.block_span(pba)
        assert geom.block_of_dot(start) == pba
        assert geom.block_of_dot(end - 1) == pba


def test_blocks_never_straddle_rows():
    with pytest.raises(ConfigurationError):
        MediumGeometry(cols=15, rows=2, dots_per_block=10)


def test_positive_dimensions_required():
    with pytest.raises(ConfigurationError):
        MediumGeometry(cols=0, rows=1, dots_per_block=1)


def test_physical_coordinates_scale_with_pitch(geom):
    x0, y0 = geom.physical_coordinates(0)
    x1, y1 = geom.physical_coordinates(1)
    assert (x0, y0) == (0.0, 0.0)
    assert x1 == pytest.approx(geom.dot.pitch_x)
    assert y1 == 0.0


def test_neighbors_interior_and_corner(geom):
    interior = geom.dot_index(2, 20)
    assert len(geom.neighbors(interior)) == 4
    assert len(geom.neighbors(0)) == 2  # corner


def test_geometry_for_blocks_capacity():
    geom = geometry_for_blocks(100, dots_per_block=64, blocks_per_row=8)
    assert geom.total_blocks >= 100
    assert geom.dots_per_block == 64


def test_geometry_for_blocks_small_counts():
    geom = geometry_for_blocks(3, dots_per_block=16, blocks_per_row=8)
    assert geom.total_blocks >= 3
    with pytest.raises(ConfigurationError):
        geometry_for_blocks(0, dots_per_block=16)
