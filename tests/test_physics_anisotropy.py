"""Anisotropy energy-balance tests (Section 7 physics)."""

import math

import pytest

from repro.physics.anisotropy import (
    AnisotropyModel,
    calibrated_model,
    demagnetizing_factors,
    shape_anisotropy,
)
from repro.physics.constants import DEFAULT_DOT, DEFAULT_STACK


def test_as_grown_film_matches_paper():
    # Fig 7: the unannealed film has K = 80 kJ/m^3
    model = calibrated_model(80e3)
    assert model.k_eff(1.0) == pytest.approx(80e3, rel=1e-6)


def test_film_easy_axis_flips_in_plane_when_mixed():
    # the SERO premise: destroyed interfaces -> in-plane easy axis
    model = AnisotropyModel()
    assert model.is_perpendicular(1.0)
    assert not model.is_perpendicular(0.0)
    assert model.k_eff(0.0) < 0


def test_dot_easy_axis_flips_too():
    model = AnisotropyModel(dot=DEFAULT_DOT)
    assert model.is_perpendicular(1.0)
    assert not model.is_perpendicular(0.0)


def test_k_eff_monotonic_in_sharpness():
    model = AnisotropyModel()
    values = [model.k_eff(s / 10.0) for s in range(11)]
    assert values == sorted(values)


def test_easy_axis_angle_binary():
    model = AnisotropyModel(dot=DEFAULT_DOT)
    assert model.easy_axis_angle(1.0) == 0.0
    assert model.easy_axis_angle(0.0) == pytest.approx(math.pi / 2.0)


def test_crystalline_fraction_removes_multilayer_phase():
    model = AnisotropyModel()
    assert model.k_eff(1.0, crystalline_fraction=0.5) < model.k_eff(1.0)
    # fully crystallised: only the demag penalty remains
    assert model.k_eff(1.0, 1.0) == pytest.approx(-model.demagnetizing_term())


def test_sharpness_bounds_enforced():
    model = AnisotropyModel()
    with pytest.raises(ValueError):
        model.interface_term(1.5)
    with pytest.raises(ValueError):
        model.k_eff(1.0, crystalline_fraction=-0.1)


def test_demag_factors_trace_one():
    na, nb, nc = demagnetizing_factors(100e-9, 20e-9)
    assert na + nb + nc == pytest.approx(1.0)
    assert nc > na  # flat dot: perpendicular is the hard axis


def test_demag_factors_limits():
    # very flat dot approaches the thin-film limit
    _, _, n_perp = demagnetizing_factors(1.0, 1e-9)
    assert n_perp > 0.99


def test_shape_anisotropy_positive_for_flat_dot():
    assert shape_anisotropy(DEFAULT_STACK.ms, 100e-9, 20e-9) > 0


def test_shape_anisotropy_rejects_bad_geometry():
    with pytest.raises(ValueError):
        demagnetizing_factors(0.0, 1e-9)


def test_anisotropy_field_positive_and_zero_when_destroyed():
    model = AnisotropyModel(dot=DEFAULT_DOT)
    assert model.anisotropy_field(1.0) > 0
    assert model.anisotropy_field(0.0) == 0.0


def test_calibrated_model_unreachable_target():
    with pytest.raises(ValueError):
        calibrated_model(-200e3)
