"""Arrhenius interface-mixing tests (the Fig 7 kinetics)."""

import pytest

from repro.physics.annealing import (
    DEFAULT_KINETICS,
    AnnealingKinetics,
    FilmState,
    anneal,
    anneal_series,
    destruction_temperature,
)

ANNEAL_TIME = 1800.0  # the 30-minute reference anneal


def test_fresh_film_is_sharp():
    state = FilmState()
    assert state.sharpness == 1.0
    assert not state.is_destroyed


def test_low_temperature_anneal_harmless():
    # Fig 7: K maintained up to 500 C
    state = anneal(FilmState(), 300.0, ANNEAL_TIME)
    assert state.sharpness > 0.999


def test_500c_still_mostly_intact():
    state = anneal(FilmState(), 500.0, ANNEAL_TIME)
    assert state.sharpness > 0.9


def test_700c_destroys_interfaces():
    # Fig 7/8: above 600 C the multilayer is destroyed
    state = anneal(FilmState(), 700.0, ANNEAL_TIME)
    assert state.is_destroyed
    assert state.sharpness < 0.01


def test_sharpness_never_increases():
    # irreversibility: the physical root of tamper evidence
    state = FilmState()
    previous = state.sharpness
    for temp in (200.0, 400.0, 650.0, 100.0, 25.0):
        anneal(state, temp, 600.0)
        assert state.sharpness <= previous
        previous = state.sharpness


def test_crystallization_only_near_700c():
    mild = anneal(FilmState(), 500.0, ANNEAL_TIME)
    hot = anneal(FilmState(), 700.0, ANNEAL_TIME)
    assert mild.crystalline_fraction < 0.01
    assert hot.crystalline_fraction > 0.1


def test_anneal_series_is_per_sample():
    temps = [25.0, 300.0, 400.0, 500.0, 600.0, 700.0]
    samples = anneal_series(temps)
    assert len(samples) == 6
    sharp = [s.sharpness for s in samples]
    assert sharp == sorted(sharp, reverse=True)


def test_thermal_history_recorded():
    state = anneal(FilmState(), 400.0, 60.0)
    assert len(state.thermal_history) == 1
    temp_k, duration = state.thermal_history[0]
    assert temp_k == pytest.approx(673.15)
    assert duration == 60.0


def test_negative_duration_rejected():
    with pytest.raises(ValueError):
        anneal(FilmState(), 300.0, -1.0)


def test_nonpositive_temperature_rejected():
    with pytest.raises(ValueError):
        DEFAULT_KINETICS.mixing_rate(0.0)


def test_destruction_temperature_between_500_and_700():
    temp = destruction_temperature(duration_s=ANNEAL_TIME)
    assert 500.0 < temp < 700.0


def test_destruction_temperature_rises_for_short_pulses():
    slow = destruction_temperature(duration_s=1800.0)
    fast = destruction_temperature(duration_s=1e-4)
    assert fast > slow


def test_custom_kinetics():
    eager = AnnealingKinetics(mixing_ea=1.0e-19)
    state = anneal(FilmState(), 300.0, 1.0, kinetics=eager)
    assert state.sharpness < 1.0
