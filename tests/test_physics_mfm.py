"""MFM read-back signal tests (Fig 1)."""

import numpy as np
import pytest

from repro.physics.mfm import (
    detect_bits,
    dot_moment,
    healthy_peak_amplitude,
    scan_dots,
)


def test_fig1_three_dot_pattern():
    # top half of Fig 1: up, down, up -> +, -, + peaks
    line = scan_dots([(1, False), (-1, False), (1, False)])
    bits = detect_bits(line, 3)
    assert bits == ["1", "0", "1"]


def test_fig1_destroyed_dot_peak_disappears():
    # bottom half of Fig 1: the heated dot's peak is gone
    line = scan_dots([(1, False), (-1, False), (1, True)])
    bits = detect_bits(line, 3)
    assert bits[:2] == ["1", "0"]
    assert bits[2] == "H"


def test_opposite_magnetisation_gives_opposite_peaks():
    up = scan_dots([(1, False)])
    down = scan_dots([(-1, False)])
    assert np.max(up.signal) == pytest.approx(-np.min(down.signal), rel=0.05)


def test_heated_dot_signal_much_weaker():
    healthy = healthy_peak_amplitude()
    heated = scan_dots([(1, True)])
    assert np.max(np.abs(heated.signal)) < 0.4 * healthy


def test_dot_moment_healthy_is_out_of_plane():
    mx, mz = dot_moment(1, heated=False)
    assert mx == 0.0 and mz > 0
    mx, mz = dot_moment(-1, heated=False)
    assert mz < 0


def test_dot_moment_heated_is_in_plane():
    mx, mz = dot_moment(1, heated=True)
    assert mz == 0.0 and mx > 0


def test_dot_moment_invalid_magnetisation():
    with pytest.raises(ValueError):
        dot_moment(0, heated=False)


def test_long_pattern_detection():
    pattern = [(1, False), (-1, False)] * 4
    line = scan_dots(pattern)
    assert detect_bits(line, 8) == ["1", "0"] * 4


def test_peak_at_requires_samples():
    line = scan_dots([(1, False)])
    with pytest.raises(ValueError):
        line.peak_at(1.0, 1e-9)  # window far off the scan
