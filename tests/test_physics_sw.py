"""Stoner-Wohlfarth switching model tests."""

import math

import pytest

from repro.physics.stoner_wohlfarth import (
    SwitchingModel,
    anisotropy_field,
    astroid_switching_field,
)


def test_astroid_extremes():
    h_k = 100e3
    assert astroid_switching_field(h_k, 0.0) == pytest.approx(h_k)
    assert astroid_switching_field(h_k, math.pi / 2) == pytest.approx(h_k)


def test_astroid_minimum_at_45_degrees():
    h_k = 100e3
    assert astroid_switching_field(h_k, math.radians(45.0)) == pytest.approx(h_k / 2)


def test_astroid_symmetry():
    h_k = 100e3
    for deg in (10.0, 30.0, 60.0):
        a = astroid_switching_field(h_k, math.radians(deg))
        b = astroid_switching_field(h_k, math.radians(180.0 - deg))
        assert a == pytest.approx(b)


def test_anisotropy_field_zero_when_in_plane():
    assert anisotropy_field(-10e3, 360e3) == 0.0
    assert anisotropy_field(50e3, 360e3) > 0


def test_healthy_dot_writable_at_margin():
    model = SwitchingModel(k_eff=100e3)
    field = 1.2 * model.switching_field()
    assert model.can_write(field)
    assert not model.can_write(0.5 * model.switching_field())


def test_destroyed_dot_never_writable():
    model = SwitchingModel(k_eff=-10e3)
    assert not model.can_write(1e9)


def test_energy_barrier_scales_with_k():
    small = SwitchingModel(k_eff=50e3)
    large = SwitchingModel(k_eff=100e3)
    assert large.energy_barrier() == pytest.approx(2 * small.energy_barrier())


def test_archival_thermal_stability():
    # a healthy 100 nm dot must hold data for years (Delta >> 40)
    model = SwitchingModel(k_eff=100e3)
    assert model.thermal_stability_ratio() > 40.0
    assert model.retention_time() > 3.15e7  # a year in seconds


def test_flip_probability_bounds():
    model = SwitchingModel(k_eff=100e3)
    p = model.flip_probability(duration_s=86400.0)
    assert 0.0 <= p < 1e-6


def test_small_k_means_volatile():
    weak = SwitchingModel(k_eff=100.0)  # nearly isotropic dot
    assert weak.flip_probability(1.0) > 0.5
