"""Tip-heating model tests (the ewb physics, Section 7)."""

import pytest

from repro.physics.annealing import FilmState
from repro.physics.thermal import (
    DEFAULT_THERMAL,
    HeatPulse,
    ThermalParameters,
    apply_pulse_to_dot,
    contact_temperature_c,
    default_pulse,
    neighbor_damage,
    power_for_temperature,
    safe_pitch,
    temperature_at_distance_c,
)


def test_contact_temperature_linear_in_power():
    t1 = contact_temperature_c(1e-3)
    t2 = contact_temperature_c(2e-3)
    ambient = DEFAULT_THERMAL.ambient_c
    assert (t2 - ambient) == pytest.approx(2 * (t1 - ambient))


def test_power_temperature_inverse():
    power = power_for_temperature(800.0)
    assert contact_temperature_c(power) == pytest.approx(800.0)


def test_power_below_ambient_rejected():
    with pytest.raises(ValueError):
        power_for_temperature(0.0)


def test_negative_power_rejected():
    with pytest.raises(ValueError):
        contact_temperature_c(-1.0)


def test_temperature_decays_with_distance():
    pulse = default_pulse()
    temps = [temperature_at_distance_c(pulse.power_w, d)
             for d in (0.0, 50e-9, 200e-9, 1e-6)]
    assert temps == sorted(temps, reverse=True)
    assert temps[-1] < temps[0] / 10


def test_default_pulse_destroys_target_dot():
    pulse = default_pulse()
    dot = FilmState()
    apply_pulse_to_dot(dot, pulse, distance=0.0)
    assert dot.is_destroyed


def test_default_pulse_spares_neighbor_at_200nm_pitch():
    # Section 7's engineering goal: heat sinks keep neighbours safe
    assert neighbor_damage(default_pulse()) < 0.01


def test_neighbor_damage_grows_without_heat_sinking():
    sunk = ThermalParameters(heat_sink_factor=0.35)
    bare = ThermalParameters(heat_sink_factor=1.0)
    pulse = default_pulse(sunk)
    damage_sunk = neighbor_damage(pulse, params=sunk)
    damage_bare = neighbor_damage(pulse, params=bare)
    assert damage_bare >= damage_sunk


def test_safe_pitch_below_200nm():
    pitch = safe_pitch(default_pulse())
    assert 0 < pitch < 200e-9


def test_safe_pitch_unreachable_raises():
    # a monstrous pulse cannot be made safe within the search range
    monster = HeatPulse(power_w=10.0, duration_s=1.0)
    with pytest.raises(ValueError):
        safe_pitch(monster, search_max=100e-9)


def test_pulse_energy():
    pulse = HeatPulse(power_w=2e-3, duration_s=1e-4)
    assert pulse.energy_j == pytest.approx(2e-7)
