"""Torque magnetometry simulation tests (the Fig 7 measurement)."""

import math

import numpy as np
import pytest

from repro.physics.constants import TORQUE_FIELD
from repro.physics.torque import (
    equilibrium_angle,
    fourier_components,
    measure_anisotropy,
    torque_curve,
)


def test_measured_k_matches_true_k():
    for k_true in (80e3, 40e3, 10e3):
        m = measure_anisotropy(k_true)
        assert m.k_measured == pytest.approx(k_true, rel=2e-3)


def test_negative_k_measured_correctly():
    # an in-plane (destroyed) film gives a negative constant
    m = measure_anisotropy(-15e3)
    assert m.k_measured == pytest.approx(-15e3, rel=2e-3)


def test_zero_k_gives_zero():
    assert measure_anisotropy(0.0).k_measured == pytest.approx(0.0, abs=1.0)


def test_torque_curve_is_sin2theta_like():
    angles = np.linspace(0, 2 * math.pi, 360, endpoint=False)
    curve = torque_curve(50e3, angles)
    comps = fourier_components(angles, curve)
    assert abs(comps[1]) > 10 * max(abs(comps[0]), abs(comps[2]))


def test_torque_vanishes_on_axes():
    # along the easy and hard axes the torque is zero by symmetry
    curve = torque_curve(50e3, [0.0, math.pi / 2.0, math.pi])
    assert np.allclose(curve, 0.0, atol=1e-6)


def test_equilibrium_angle_tracks_field_at_high_field():
    theta = equilibrium_angle(50e3, 360e3, 10 * TORQUE_FIELD, 0.7)
    assert theta == pytest.approx(0.7, abs=0.02)


def test_equilibrium_angle_lags_towards_easy_axis():
    theta_h = math.radians(45.0)
    theta_m = equilibrium_angle(80e3, 360e3, TORQUE_FIELD, theta_h)
    assert 0.0 < theta_m < theta_h  # pulled towards the easy axis at 0


def test_noise_tolerance():
    m = measure_anisotropy(80e3, noise_level=0.05,
                           rng=np.random.default_rng(42))
    assert m.k_measured == pytest.approx(80e3, rel=0.05)


def test_invalid_field_rejected():
    with pytest.raises(ValueError):
        equilibrium_angle(1e3, 1e5, 0.0, 0.1)


def test_measurement_returns_full_curve():
    m = measure_anisotropy(30e3, n_angles=180)
    assert len(m.angles_h) == 180
    assert len(m.torque) == 180
