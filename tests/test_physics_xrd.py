"""Kinematic XRD tests (Figs 8 and 9)."""

import numpy as np
import pytest

from repro.physics.annealing import FilmState, anneal
from repro.physics.constants import COPT_111_D_SPACING
from repro.physics.xrd import (
    bragg_two_theta,
    high_angle_scan,
    low_angle_scan,
    multilayer_peak_visible,
)


@pytest.fixture(scope="module")
def annealed_state():
    state = FilmState()
    anneal(state, 700.0, 1800.0)
    return state


def test_bragg_relation():
    # 1.1 nm multilayer period -> 2theta ~ 8 degrees for Cu K-alpha
    assert bragg_two_theta(1.1e-9) == pytest.approx(8.0, abs=0.3)


def test_bragg_rejects_tiny_spacing():
    with pytest.raises(ValueError):
        bragg_two_theta(0.05e-9)


def test_fig8_as_grown_peak_near_8_degrees():
    scan = low_angle_scan()
    assert multilayer_peak_visible(scan)
    assert scan.peak_two_theta(6.0, 10.0) == pytest.approx(8.0, abs=0.5)


def test_fig8_annealed_peak_vanishes(annealed_state):
    scan = low_angle_scan(annealed_state)
    assert not multilayer_peak_visible(scan)


def test_fig8_peak_amplitude_tracks_sharpness():
    # partially mixed film: reduced but still present contrast
    half = FilmState(sharpness=0.5)
    full = low_angle_scan().peak_intensity(6.0, 10.0)
    reduced = low_angle_scan(half).peak_intensity(6.0, 10.0)
    assert 0.0 < reduced < full


def test_fig9_annealed_copt_peak_at_41_7(annealed_state):
    scan = high_angle_scan(annealed_state)
    assert scan.peak_two_theta(38.0, 46.0) == pytest.approx(41.7, abs=0.2)


def test_fig9_as_grown_has_no_sharp_peak(annealed_state):
    fresh = high_angle_scan()
    hot = high_angle_scan(annealed_state)
    window = (40.0, 43.0)
    assert hot.peak_intensity(*window) > 10 * fresh.peak_intensity(*window)


def test_copt_d_spacing_consistent_with_paper():
    assert bragg_two_theta(COPT_111_D_SPACING) == pytest.approx(41.7, abs=0.1)


def test_scan_peak_helpers_validate_window():
    scan = low_angle_scan()
    with pytest.raises(ValueError):
        scan.peak_two_theta(100.0, 120.0)


def test_custom_two_theta_axis():
    axis = np.linspace(4.0, 12.0, 100)
    scan = low_angle_scan(two_theta_deg=axis)
    assert scan.two_theta_deg.shape == (100,)
    assert scan.intensity.shape == (100,)
