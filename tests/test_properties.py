"""Property-based tests (hypothesis) on the core data structures."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashutil import line_hash
from repro.crypto.manchester import decode_bytes, decode_pattern, encode_bytes
from repro.crypto.sha256 import SHA256
from repro.crypto.wom import decode_bits as wom_decode
from repro.crypto.wom import encode_bits as wom_encode
from repro.device import ecc
from repro.device.sector import BLOCK_SIZE, decode_frame, encode_frame
from repro.fs.directory import pack_entries, unpack_entries
from repro.fs.inode import FileType, Inode, N_DIRECT
from repro.fs.layout import Checkpoint

import hashlib


@given(st.binary(max_size=512))
def test_sha256_always_matches_hashlib(data):
    assert SHA256(data).digest() == hashlib.sha256(data).digest()


@given(st.binary(max_size=300), st.binary(max_size=300))
def test_sha256_incremental_equivalence(a, b):
    h = SHA256(a)
    h.update(b)
    assert h.digest() == SHA256(a + b).digest()


@given(st.binary(max_size=256))
def test_manchester_roundtrip(data):
    assert decode_bytes(encode_bytes(data)) == data


@given(st.binary(min_size=1, max_size=64), st.data())
def test_manchester_any_extra_heat_is_detected_or_meaningless(data, draw):
    # heating any currently unheated dot either creates HH (tamper) or
    # turns an unused cell into a valid-looking cell — but within a
    # fully written pattern there are no unused cells, so evidence is
    # guaranteed
    pattern = encode_bytes(data)
    index = draw.draw(st.integers(0, len(pattern) - 1))
    if pattern[index]:
        return  # already heated: nothing to change (write-once)
    pattern[index] = True
    assert decode_pattern(pattern).is_tampered


@given(st.lists(st.integers(0, 1), min_size=2, max_size=64)
       .filter(lambda bits: len(bits) % 2 == 0))
def test_wom_roundtrip(bits):
    assert wom_decode(wom_encode(bits)) == bits


@given(st.binary(min_size=64, max_size=64), st.integers(0, 71))
def test_ecc_corrects_any_single_flip(data, position):
    encoded = ecc.encode(data)
    corrupted = encoded.copy()
    corrupted[position] ^= 1
    assert ecc.decode(corrupted).data == data


@given(st.integers(0, 2**40), st.binary(max_size=BLOCK_SIZE))
def test_sector_frame_roundtrip(pba, payload):
    payload = payload + b"\x00" * (BLOCK_SIZE - len(payload))
    frame = decode_frame(encode_frame(pba, payload), expected_pba=pba)
    assert frame.payload == payload
    assert frame.pba == pba


@given(st.lists(st.binary(min_size=512, max_size=512), min_size=1, max_size=4),
       st.lists(st.integers(0, 2**30), min_size=1, max_size=4))
def test_line_hash_injective_under_address_permutation(blocks, addresses):
    if len(blocks) != len(addresses) or len(set(addresses)) != len(addresses):
        return
    h1 = line_hash(addresses, blocks)
    rotated = addresses[1:] + addresses[:1]
    if rotated != addresses:
        assert line_hash(rotated, blocks) != h1


@given(st.integers(1, 2**40), st.integers(0, 2**40), st.integers(0, 65535),
       st.text(max_size=20),
       st.lists(st.integers(0, 2**40), max_size=N_DIRECT))
def test_inode_roundtrip(ino, size, links, name, direct):
    inode = Inode(ino=ino, ftype=FileType.REGULAR,
                  link_count=links, size=size,
                  name_hint=name, direct=direct)
    out = Inode.unpack(inode.pack())
    assert out.ino == ino
    assert out.size == size
    assert out.link_count == links
    assert out.direct == direct


@given(st.dictionaries(
    st.text(alphabet=st.characters(blacklist_characters="/\x00",
                                   blacklist_categories=("Cs",)),
            min_size=1, max_size=30),
    st.tuples(st.sampled_from([FileType.REGULAR, FileType.DIRECTORY]),
              st.integers(1, 2**40)),
    max_size=10))
def test_directory_roundtrip(entries):
    assert unpack_entries(pack_entries(entries)) == entries


@given(st.integers(1, 2**30), st.integers(1, 2**30), st.integers(0, 2**30),
       st.dictionaries(st.integers(1, 2**30), st.integers(0, 2**30),
                       max_size=20),
       st.lists(st.tuples(st.integers(0, 2**20), st.integers(2, 64)),
                max_size=5))
def test_checkpoint_roundtrip(gen, ino, tick, imap, lines):
    cp = Checkpoint(generation=gen, next_ino=ino, tick=tick,
                    imap=imap, heated_lines=lines)
    out = Checkpoint.unpack(cp.pack())
    assert out.imap == imap
    assert out.heated_lines == sorted(lines)


@settings(max_examples=25)
@given(st.binary(min_size=0, max_size=3000))
def test_venti_stream_roundtrip_property(data):
    from repro.device.sero import SERODevice
    from repro.integrity.venti import VentiStore

    store = VentiStore(SERODevice.create(256), arena_start=16,
                       arena_blocks=230)
    assert store.read_stream(store.put_stream(data)) == data


# ---------------------------------------------------------------------------
# Compact medium snapshot transport (the fleet's process/rpc pickle)


def _scrambled_medium(seed, heated_frac, touched_frac, uniform, sigma,
                      rng_draws):
    """A small medium driven into an arbitrary-but-physical state.

    Randomised mag bits, an arbitrary touched-dot bitmap, and (unless
    ``uniform``) non-uniform sharpness values — the exact surface the
    compact ``__getstate__`` snapshot has to reproduce.  The one
    physical invariant is honoured: a dot heated below the sharpness
    threshold holds no magnetisation (``mag == 0``), which is what
    makes the packed-sign-bit encoding lossless.
    """
    from repro.device.sero import SERODevice
    from repro.medium.dot import HEATED_SHARPNESS_THRESHOLD
    from repro.medium.medium import MediumConfig

    device = SERODevice.create(
        2, medium_config=MediumConfig(seed=seed, switching_sigma=sigma))
    medium = device.medium
    n = medium.geometry.total_dots
    rng = np.random.default_rng(seed ^ 0x5EED)
    medium._mag[:] = np.where(rng.integers(0, 2, size=n) > 0, 1,
                              -1).astype(np.int8)
    touched = rng.random(n) < touched_frac
    heated = touched & (rng.random(n) < heated_frac)
    sharpness = np.ones(n, dtype=np.float32)
    if uniform:
        sharpness[touched] = np.float32(0.25)
        heated = touched  # one repeated sub-threshold value
    else:
        # non-uniform: heated dots well below the threshold, merely
        # annealed dots above it but visibly below 1.0
        sharpness[touched] = rng.uniform(
            0.51, 0.95, size=int(touched.sum())).astype(np.float32)
        sharpness[heated] = rng.uniform(
            0.001, 0.2, size=int(heated.sum())).astype(np.float32)
    medium._sharpness[:] = sharpness
    medium._mag[medium._sharpness < HEATED_SHARPNESS_THRESHOLD] = 0
    medium.counters.update(
        {"mrb": int(rng.integers(0, 1000)),
         "mwb": int(rng.integers(0, 1000)),
         "heat": int(rng.integers(0, 1000))})
    for _ in range(rng_draws):  # advance the live RNG off its seed
        medium._rng.integers(0, 2)
    return medium


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31 - 1),
       heated_frac=st.floats(0.0, 1.0),
       touched_frac=st.floats(0.0, 1.0),
       uniform=st.booleans(),
       sigma=st.sampled_from([0.0, 0.02, 0.1]),
       rng_draws=st.integers(0, 40))
def test_medium_snapshot_roundtrip_exact(seed, heated_frac, touched_frac,
                                         uniform, sigma, rng_draws):
    """The compact pickled snapshot must reproduce the medium *exactly*
    under arbitrary mag bits, touched bitmaps and non-uniform
    sharpness — every array byte, the counters, and the RNG state."""
    import pickle

    medium = _scrambled_medium(seed, heated_frac, touched_frac, uniform,
                               sigma, rng_draws)
    clone = pickle.loads(pickle.dumps(medium, pickle.HIGHEST_PROTOCOL))
    assert np.array_equal(clone._mag, medium._mag)
    assert clone._mag.dtype == medium._mag.dtype
    assert np.array_equal(clone._sharpness, medium._sharpness)
    assert clone._sharpness.dtype == medium._sharpness.dtype
    assert clone.counters == medium.counters
    assert clone._rng.bit_generator.state == \
        medium._rng.bit_generator.state
    if sigma > 0.0:  # the k-scale regenerates bit-exactly from config
        assert np.array_equal(clone._k_scale, medium._k_scale)
    else:
        assert clone._k_scale is None and medium._k_scale is None


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**31 - 1),
       heated_frac=st.floats(0.05, 1.0),
       rng_draws=st.integers(0, 25))
def test_medium_snapshot_rng_continuation(seed, heated_frac, rng_draws):
    """A restored medium continues the exact random sequence: the read
    noise of heated dots (the RNG consumer) matches draw for draw."""
    import pickle

    medium = _scrambled_medium(seed, heated_frac, 0.6, False, 0.0,
                               rng_draws)
    clone = pickle.loads(pickle.dumps(medium, pickle.HIGHEST_PROTOCOL))
    n = medium.geometry.total_dots
    for start, end in ((0, n // 2), (n // 2, n)):
        assert np.array_equal(medium.read_mag_span(start, end),
                              clone.read_mag_span(start, end))
    assert medium.counters == clone.counters
    assert medium._rng.bit_generator.state == \
        clone._rng.bit_generator.state


@settings(max_examples=20)
@given(st.lists(st.binary(min_size=1, max_size=16), min_size=1, max_size=30,
                unique=True))
def test_fossil_membership_property(keys):
    from repro.crypto.sha256 import sha256_digest
    from repro.device.sero import SERODevice
    from repro.integrity.fossil import FossilizedIndex

    index = FossilizedIndex(SERODevice.create(512), arena_start=16,
                            arena_blocks=480)
    hashes = [sha256_digest(k) for k in keys]
    for h in hashes:
        index.insert(h)
    assert all(index.contains(h) for h in hashes)
    assert not index.contains(sha256_digest(b"\x00definitely-absent"))
