"""Batched seal path: ``heat_files`` / ``heat_lines`` equivalence.

The pure-backend ``seal_many`` routes every line hash of a batch
through :func:`~repro.crypto.hashutil.line_hash_many` lanes.  The
fidelity bar is *bit-identity with the serial path*: receipts,
digests, line placement, RNG continuation, fossil catalogue, and
audit verdicts must all match a ``seal`` loop run on an identically
provisioned store — only the simulated device seconds may differ
(the batched seek schedule is different, the work is not).
"""

from __future__ import annotations

import pytest

from repro.api.store import StoreConfig, TamperEvidentStore
from repro.crypto import sha256 as _sha
from repro.device.sero import VerifyStatus
from repro.errors import ImmutableFileError, NoSpaceError

CONFIG = StoreConfig(total_blocks=256, audit_log=True,
                     fossil_blocks=64, archive_blocks=64)


@pytest.fixture()
def pure_backend():
    saved = _sha.get_pinned_backend()
    _sha.set_backend("pure")
    try:
        yield
    finally:
        _sha.set_backend(saved)


def _store() -> TamperEvidentStore:
    return TamperEvidentStore.create(CONFIG)


def _fill(store: TamperEvidentStore, n: int = 5):
    paths = []
    for i in range(n):
        path = f"/f{i}"
        # mixed sizes: some lines share a length (one hash lane),
        # some do not (their own lane)
        store.put(path, bytes([i + 1]) * (60 + 200 * (i % 3)))
        paths.append(path)
    return paths


def test_pure_batched_receipts_equal_hashlib_serial(pure_backend):
    serial = _store()
    serial_paths = _fill(serial)
    saved = _sha.get_pinned_backend()
    _sha.set_backend("hashlib")
    try:
        serial_receipts = [serial.seal(p) for p in serial_paths]
    finally:
        _sha.set_backend(saved)

    batched = _store()
    batched_paths = _fill(batched)
    batched_receipts = batched.seal_many(batched_paths)

    assert batched_receipts == serial_receipts
    assert batched.receipts == serial.receipts


def test_pure_batched_state_equal_pure_serial(pure_backend):
    serial = _store()
    paths = _fill(serial)
    serial_receipts = [serial.seal(p) for p in paths]

    batched = _store()
    _fill(batched)
    batched_receipts = batched.seal_many(paths)

    assert batched_receipts == serial_receipts
    # everything but the simulated clock is bit-identical
    for a, b in ((serial.device, batched.device),):
        assert a.medium._rng.bit_generator.state == \
            b.medium._rng.bit_generator.state
        assert sorted(a.medium.counters.items()) == \
            sorted(b.medium.counters.items())
        assert a.medium._mut_epoch == b.medium._mut_epoch
        assert sorted(a._lines) == sorted(b._lines)
    # the fossil catalogue saw the same inserts
    assert serial.fossil is not None and batched.fossil is not None
    assert serial.fossil.node_count == batched.fossil.node_count
    assert serial.fossil.sealed_nodes == batched.fossil.sealed_nodes
    for receipt in serial_receipts:
        assert batched.fossil.contains(receipt.line_hash)


def test_batched_audit_and_verify_clean(pure_backend):
    store = _store()
    paths = _fill(store, n=6)
    store.seal_many(paths)
    for path in paths:
        assert store.verify(path).status is VerifyStatus.INTACT
    report = store.audit(deep=True)
    assert not report.fs_errors
    assert all(r.status is VerifyStatus.INTACT for r in report.reports)


def test_duplicate_path_seals_prefix_then_raises(pure_backend):
    store = _store()
    paths = _fill(store, n=3)
    with pytest.raises(ImmutableFileError):
        store.seal_many([paths[0], paths[1], paths[0], paths[2]])
    # serial semantics: the prefix before the failure is sealed and
    # fully recorded; the suffix is untouched
    assert paths[0] in store.receipts and paths[1] in store.receipts
    assert paths[2] not in store.receipts
    assert store.verify(paths[0]).status is VerifyStatus.INTACT
    assert store.fs._staged_blocks == set()
    # the suffix path is still sealable afterwards
    store.seal(paths[2])


def test_no_space_mid_batch_commits_prefix(pure_backend):
    store = TamperEvidentStore.create(
        StoreConfig(total_blocks=128, audit_log=True))
    small = "/small"
    store.put(small, b"s" * 40)
    big = "/big"
    store.put(big, b"B" * (40 * 512))  # cannot fit a line this large
    with pytest.raises(NoSpaceError):
        store.seal_many([small, big])
    assert small in store.receipts
    assert store.verify(small).status is VerifyStatus.INTACT
    assert store.fs._staged_blocks == set()


def test_hashlib_seal_many_unchanged():
    # default backend: seal_many must stay the plain serial loop,
    # byte-for-byte (the batched gate is pure-backend only)
    a, b = _store(), _store()
    paths = _fill(a)
    _fill(b)
    assert a.seal_many(paths) == [b.seal(p) for p in paths]
    assert a.device.medium._rng.bit_generator.state == \
        b.device.medium._rng.bit_generator.state
    assert a.device.account.elapsed == b.device.account.elapsed


def test_staged_blocks_invisible_to_allocator(pure_backend):
    # while lines are staged, the allocator and extent finder must
    # not hand their blocks out — a batch of same-length lines lands
    # on distinct extents exactly like the serial loop
    store = _store()
    paths = []
    for i in range(4):
        path = f"/same{i}"
        store.put(path, b"x" * 100)
        paths.append(path)
    receipts = store.seal_many(paths)
    starts = [r.line_start for r in receipts]
    assert len(set(starts)) == len(starts)
