"""The evidence index: query grammar, facets, highlighting, journal,
percolator, and the fleet hooks that feed it.

Four layers:

* **query layer** — the ``field:value`` / free-term grammar, the
  deterministic (-score, doc_id) hit order, facet aggregation over
  the full match set, and snippet highlighting through the
  ``REPRO_SEARCH_*`` policy chain;
* **journal + rebuild** — every ingest is journaled on a SHA-256
  hash chain before folding; ``rebuild()`` replays the journal into a
  byte-identical index, and a spliced journal fails ``verify()``;
* **percolator** — standing queries fire typed tamper alerts exactly
  on the transition into matching (no re-fire on an unchanged
  verdict; re-armed when the document stops matching);
* **fleet integration** — ``FleetStore.attach_indexer`` feeds the
  index from the ops' own typed payloads, including the
  ``member_records`` a fleet audit now carries.
"""

from __future__ import annotations

import dataclasses

import pytest

import repro
from repro.api import (
    FleetStore,
    MemberVerdictRecord,
    SealReceipt,
    StoreConfig,
)
from repro.api.policy import (
    SEARCH_FRAGMENT_COUNT_ENV_VAR,
    SEARCH_FRAGMENT_SIZE_ENV_VAR,
    SEARCH_MAX_HITS_ENV_VAR,
    resolve_search_fragment_count,
    resolve_search_fragment_size,
    resolve_search_max_hits,
)
from repro.search import (
    EvidenceIndex,
    JournalError,
    Percolator,
    Query,
    StandingQuery,
    TamperAlert,
    as_query,
    highlight_fragments,
    scan_search,
)
from repro.security.attacks import mwb_data

CONFIG = StoreConfig(total_blocks=192)


# -- query grammar -------------------------------------------------------------


def test_parse_splits_filters_and_terms():
    q = Query.parse("verdict:cell-tampered member:m2 forged ledger")
    assert q.filters == (("verdict", "cell-tampered"), ("member", "m2"))
    assert q.terms == ("forged", "ledger")


def test_parse_round_trips_through_to_text():
    q = Query.parse("tenant:acme tampered:true audit")
    assert Query.parse(q.to_text()) == q


def test_non_field_colon_pieces_tokenize_as_terms():
    # "9:30" has no field-identifier left side: free terms
    q = Query.parse("9:30 Verdict")
    assert q.filters == ()
    assert set(q.terms) == {"9", "30", "verdict"}


def test_filters_match_normalized_values():
    q = Query.parse("tampered:true member:m1")
    assert q.matches({"tampered": True, "member": "m1"})
    assert not q.matches({"tampered": False, "member": "m1"})
    assert not q.matches({"tampered": True})


def test_terms_match_any_field():
    q = Query.parse("forged")
    assert q.matches({"text": "the FORGED block"})
    assert q.matches({"label": "forged-line"})
    assert not q.matches({"text": "clean"})


def test_as_query_coerces_and_rejects():
    assert as_query("a:b") == Query.parse("a:b")
    parsed = Query.parse("x")
    assert as_query(parsed) is parsed
    with pytest.raises(TypeError):
        as_query(42)


# -- search over the index -----------------------------------------------------


def _tiny_index() -> EvidenceIndex:
    index = EvidenceIndex()
    for i in range(6):
        index.note_put(f"/t/acme/obj-{i}", size=10 * (i + 1),
                       member=i % 2)
    index.note_put("/t/beta/other", size=5, member=0)
    return index


def test_empty_query_matches_everything():
    index = _tiny_index()
    result = index.search("")
    assert result.total == 7


def test_filter_narrow_and_facets_over_full_match_set():
    index = _tiny_index()
    result = index.search("tenant:acme", facets=("member",), limit=2)
    assert result.total == 6
    assert len(result.hits) == 2  # bounded by limit, total is not
    assert dict(result.facets["member"]) == {"m0": 3, "m1": 3}


def test_hit_order_is_deterministic():
    index = EvidenceIndex()
    index.note_put("/a", size=1)
    index.note_put("/b", size=1)
    first = index.search("")
    second = index.search("")
    assert [h.doc_id for h in first.hits] == \
        [h.doc_id for h in second.hits] == ["obj:/a", "obj:/b"]


def test_scan_search_is_an_exact_oracle():
    index = _tiny_index()
    for q in ("", "tenant:acme", "obj", "member:m1 obj",
              "tenant:acme member:m0"):
        indexed = index.search(q, facets=("member", "tenant"))
        scanned = scan_search(index.documents, q,
                              facets=("member", "tenant"))
        assert indexed == scanned, q


# -- highlighting + the policy chain ------------------------------------------


def test_highlight_wraps_matches_in_em():
    frags = highlight_fragments("a forged entry", ["forged"],
                                fragment_size=40, fragment_count=1)
    assert frags == ("a <em>forged</em> entry",)


def test_highlight_windows_and_ellipses():
    text = "x" * 50 + " forged " + "y" * 50
    (frag,) = highlight_fragments(text, ["forged"],
                                  fragment_size=20, fragment_count=1)
    assert "<em>forged</em>" in frag
    assert frag.startswith("…") and frag.endswith("…")
    assert len(frag) < len(text)


def test_fragment_count_zero_highlights_whole_text():
    text = "forged start and forged end"
    (frag,) = highlight_fragments(text, ["forged"], fragment_count=0)
    assert frag == "<em>forged</em> start and <em>forged</em> end"


def test_no_occurrence_no_fragments():
    assert highlight_fragments("clean text", ["forged"]) == ()


def test_policy_chain_env_then_context_then_explicit(monkeypatch):
    monkeypatch.delenv(SEARCH_FRAGMENT_SIZE_ENV_VAR, raising=False)
    assert resolve_search_fragment_size() == (80, "default")
    monkeypatch.setenv(SEARCH_FRAGMENT_SIZE_ENV_VAR, "33")
    assert resolve_search_fragment_size() == (33, "env")
    with repro.engine(search_fragment_size=21):
        assert resolve_search_fragment_size() == (21, "context")
        assert resolve_search_fragment_size(7) == (7, "explicit")
    monkeypatch.setenv(SEARCH_FRAGMENT_SIZE_ENV_VAR, "not-a-number")
    assert resolve_search_fragment_size() == (80, "default")


def test_policy_chain_fragment_count_and_max_hits(monkeypatch):
    monkeypatch.setenv(SEARCH_FRAGMENT_COUNT_ENV_VAR, "0")
    assert resolve_search_fragment_count() == (0, "env")
    monkeypatch.setenv(SEARCH_MAX_HITS_ENV_VAR, "0")  # below minimum
    assert resolve_search_max_hits() == (50, "default")
    with repro.engine(search_max_hits=5):
        assert resolve_search_max_hits() == (5, "context")


def test_max_hits_bounds_hits_through_the_chain():
    index = _tiny_index()
    with repro.engine(search_max_hits=3):
        result = index.search("")
    assert result.total == 7 and len(result.hits) == 3


# -- journal + rebuild ---------------------------------------------------------


def test_rebuild_is_byte_identical():
    index = _tiny_index()
    index.note_delete("/t/acme/obj-3")
    rebuilt = index.rebuild()
    assert rebuilt.canonical_bytes() == index.canonical_bytes()


def test_journal_verify_catches_tampering():
    index = _tiny_index()
    index.verify_journal()
    entry = index.journal.entries[2]
    index.journal.entries[2] = dataclasses.replace(
        entry, payload={**entry.payload, "size": 999_999})
    with pytest.raises(JournalError):
        index.verify_journal()


def test_delete_drops_document_and_postings():
    index = _tiny_index()
    index.note_delete("/t/acme/obj-0")
    assert index.search("path:/t/acme/obj-0").total == 0
    assert index.rebuild().canonical_bytes() == index.canonical_bytes()


# -- percolator ----------------------------------------------------------------


def test_alert_fires_only_on_transition():
    perc = Percolator()
    perc.register(StandingQuery(name="t", query="tampered:true"))
    bad = {"tampered": True, "path": "/x"}
    assert len(perc.percolate("d1", bad, epoch=1, tick=1)) == 1
    # same state again: no re-fire
    assert perc.percolate("d1", bad, epoch=2, tick=2) == []
    # transition out re-arms...
    assert perc.percolate("d1", {"tampered": False}, epoch=3,
                          tick=3) == []
    # ...so a regression fires again
    assert len(perc.percolate("d1", bad, epoch=4, tick=4)) == 1
    assert len(perc.alerts) == 2


def test_tenant_confined_standing_query():
    perc = Percolator()
    perc.register(StandingQuery(name="t", query="tampered:true",
                                tenant="acme"))
    fired = perc.percolate(
        "d1", {"tampered": True, "tenant": "beta"}, epoch=1, tick=1)
    assert fired == []
    fired = perc.percolate(
        "d2", {"tampered": True, "tenant": "acme"}, epoch=1, tick=2)
    assert len(fired) == 1


def test_unregister_keeps_fired_alerts():
    index = EvidenceIndex()
    index.register_alert("t", "tampered:true")
    assert index.unregister_alert("t") is True
    assert index.unregister_alert("t") is False
    assert index.standing_queries() == []
    # both journaled: the rebuild reproduces the empty standing set
    assert index.rebuild().canonical_bytes() == index.canonical_bytes()


def test_tamper_alert_json_round_trip():
    alert = TamperAlert(name="t", query="tampered:true", doc_id="d",
                        epoch=3, tick=9, member="m1", label="/x",
                        verdict="hash-mismatch")
    assert TamperAlert.from_json(alert.to_json()) == alert


# -- fleet integration ---------------------------------------------------------


def test_fleet_audit_exposes_typed_member_records():
    fleet = FleetStore.create(2, CONFIG)
    fleet.put("/a", b"data-a")
    fleet.seal("/a")
    report = fleet.audit()
    assert report.member_records
    record = report.member_records[0]
    assert isinstance(record, MemberVerdictRecord)
    # member-local: the label is NOT "m<i>:"-prefixed
    assert not record.report.label.startswith("m")
    assert record.report.intact
    # the merged reports still carry the prefixed labels
    assert all(r.label.startswith("m") for r in report.reports)


def test_fleet_hooks_feed_index_and_tamper_fires_once():
    fleet = FleetStore.create(2, CONFIG)
    index = EvidenceIndex()
    fleet.attach_indexer(index)
    index.register_alert("tamper", "tampered:true")

    fleet.put("/t/acme/a", b"object a", make_parents=True)
    fleet.seal("/t/acme/a")
    fleet.put("/t/acme/b", b"object b", make_parents=True)
    fleet.seal_many(["/t/acme/b"])
    fleet.audit()
    assert index.alerts == []
    assert index.search("tenant:acme sealed:true").total == 2

    path = "/t/acme/a"
    member = fleet.members[fleet.route(path)]
    mwb_data(member.device, member.receipts[path].line_start)
    report = fleet.audit()
    assert not report.clean
    assert [a.doc_id for a in index.alerts] == [f"obj:{path}"]
    fleet.audit()  # unchanged verdict: no re-fire
    assert len(index.alerts) == 1
    assert index.rebuild().canonical_bytes() == index.canonical_bytes()
    index.verify_journal()


def test_export_evidence_text_is_searchable_and_highlighted():
    fleet = FleetStore.create(2, CONFIG)
    index = EvidenceIndex()
    fleet.attach_indexer(index)
    fleet.export_evidence(
        "acme--case7",
        {"note.txt": b"the forged entry sat in the middle"})
    result = index.search("forged", highlight=True, fragment_size=24,
                          fragment_count=1)
    assert result.total == 1
    hit = result.hits[0]
    assert hit.doc_id == "ev:acme--case7/note.txt"
    assert hit.fields["tenant"] == "acme"
    assert any("<em>forged</em>" in frag for frag in hit.highlights)


def test_reput_clears_stale_seal_fields():
    # sealed files are heated and immutable on the fleet, so a re-put
    # of the same doc id is driven through the index API directly
    index = EvidenceIndex()
    index.note_put("/a", size=2, member=0)
    receipt = SealReceipt(path="/a", line_start=7, n_blocks=1,
                          line_hash=b"\xab" * 32, timestamp=1)
    index.note_seal(receipt, member=0)
    assert index.search("sealed:true").total == 1
    index.note_put("/a", size=3, member=0)
    assert index.search("sealed:true").total == 0
    assert index.search("sealed:false").total == 1
    assert index.rebuild().canonical_bytes() == index.canonical_bytes()
