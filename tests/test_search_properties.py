"""Property tests: the incremental index is never a second source of
truth.

Hypothesis drives random put / seal / delete / audit traces against a
small fleet with an attached :class:`~repro.search.EvidenceIndex` and
checks, after every trace:

* ``rebuild()`` — a cold replay of the hash-chained journal — is
  **byte-identical** to the incrementally maintained index;
* the journal hash chain verifies;
* the indexed search path agrees exactly with the naive full-scan
  oracle for a spread of queries;
* a clean trace fires zero tamper alerts, and tampering with exactly
  one sealed object fires exactly one.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import FleetStore, StoreConfig
from repro.search import EvidenceIndex, scan_search
from repro.security.attacks import mwb_data

CONFIG = StoreConfig(total_blocks=224)

OPS = st.lists(
    st.sampled_from(["put", "put", "seal", "delete", "audit"]),
    min_size=1, max_size=24)

ORACLE_QUERIES = ("", "sealed:true", "sealed:false", "obj",
                  "verdict:intact", "member:m0 p00")


def _run_trace(ops):
    """Apply ``ops`` to a fresh indexed fleet; return (fleet, index,
    sealed paths)."""
    fleet = FleetStore.create(2, CONFIG)
    index = EvidenceIndex()
    fleet.attach_indexer(index)
    index.register_alert("tamper", "tampered:true")

    unsealed = []
    sealed = []
    counter = 0
    for op in ops:
        if op == "put":
            path = f"/p{counter:03d}"
            counter += 1
            fleet.put(path, b"payload-" + path.encode())
            unsealed.append(path)
        elif op == "seal" and unsealed:
            path = unsealed.pop(0)
            fleet.seal(path)
            sealed.append(path)
        elif op == "delete" and unsealed:
            # sealed objects are heated and immutable; only unsealed
            # ones can leave
            fleet.delete(unsealed.pop())
        elif op == "audit":
            fleet.audit()
    return fleet, index, sealed


def _assert_invariants(index):
    index.verify_journal()
    assert index.rebuild().canonical_bytes() == index.canonical_bytes()
    for q in ORACLE_QUERIES:
        indexed = index.search(q, facets=("member", "verdict"))
        scanned = scan_search(index.documents, q,
                              facets=("member", "verdict"))
        assert indexed == scanned, q


@settings(max_examples=25, deadline=None)
@given(ops=OPS)
def test_incremental_index_equals_rebuild(ops):
    fleet, index, _sealed = _run_trace(ops)
    fleet.audit()
    _assert_invariants(index)
    assert index.alerts == []  # clean trace: no standing query fires


@settings(max_examples=25, deadline=None)
@given(ops=OPS, victim=st.integers(min_value=0, max_value=1000))
def test_single_tamper_fires_exactly_one_alert(ops, victim):
    fleet, index, sealed = _run_trace(ops)
    if not sealed:
        return  # nothing sealed: nothing to tamper with
    path = sealed[victim % len(sealed)]
    member = fleet.members[fleet.route(path)]
    mwb_data(member.device, member.receipts[path].line_start)

    report = fleet.audit()
    assert not report.clean
    assert [a.doc_id for a in index.alerts] == [f"obj:{path}"]
    assert index.alerts[0].verdict in ("hash-mismatch", "cell-tampered")

    fleet.audit()  # unchanged verdict: the alert must not re-fire
    assert len(index.alerts) == 1
    _assert_invariants(index)
