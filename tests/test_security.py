"""Section 5 security analysis tests: every case of the paper's matrix."""

import pytest

from repro.device.sero import VerifyStatus
from repro.security.analysis import SCENARIOS, run_attack_matrix, scenario_copy_mask
from repro.security.detection import Expectation
from repro.security.threat import POWERFUL_INSIDER, AccessLevel


def test_threat_model_defaults():
    assert POWERFUL_INSIDER.access is AccessLevel.MEDIUM
    assert not POWERFUL_INSIDER.may_remove_device
    assert not POWERFUL_INSIDER.may_destroy_physically


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_each_scenario_matches_paper(name):
    outcome = SCENARIOS[name]()
    assert outcome.achieved, (
        f"scenario {name!r} diverged from the paper: "
        f"expected {outcome.expectation.value}, verification = "
        f"{outcome.verification.status.value if outcome.verification else '-'} "
        f"({outcome.notes})")


def test_full_matrix_all_achieved():
    report = run_attack_matrix(names=["mwb-hash", "mwb-data", "rm"])
    assert report.all_achieved
    assert len(report.outcomes) == 3


def test_matrix_rows_format():
    report = run_attack_matrix(names=["mwb-hash"])
    rows = report.rows()
    assert rows[0][0] == "mwb hash"
    assert rows[0][1] == Expectation.HARMLESS.value
    assert rows[0][2] == "yes"


def test_copy_mask_ablation_shows_address_binding_matters():
    # with addresses in the hash, the copy is distinguishable; without,
    # it is not — demonstrating why Section 5.2's defence works
    with_addr = scenario_copy_mask(include_addresses=True)
    without_addr = scenario_copy_mask(include_addresses=False)
    assert with_addr.achieved
    assert without_addr.achieved  # "achieved" = matches ablated prediction
    assert with_addr.expectation is Expectation.DETECTED
    assert without_addr.expectation is Expectation.HARMLESS


def test_mwb_hash_attack_really_writes(small_device):
    from repro.security import attacks

    for pba in range(1, 4):
        small_device.write_block(pba, b"\x42" * 512)
    small_device.heat_line(0, 4)
    written = attacks.mwb_hash(small_device, 0, n_dots=32)
    assert written == 32
    assert small_device.verify_line(0).status is VerifyStatus.INTACT


def test_bulk_erase_destroys_unheated_files():
    # sanity: the attack genuinely wipes magnetic content
    from repro.errors import ReadError
    from repro.security import attacks

    from repro.device.sero import SERODevice

    device = SERODevice.create(64)
    device.write_block(1, b"\x99" * 512)
    attacks.bulk_erase(device)
    with pytest.raises(ReadError):
        device.read_block(1)
