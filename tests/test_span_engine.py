"""Span-engine tests: scalar<->span equivalence, statistics and cost parity.

The vectorized span engine must be *protocol-equivalent* to the scalar
per-dot reference path:

* identical verdicts (ers cell states, verify_line statuses, scan_lines
  registries) on virgin, written, tampered and defective media;
* identical medium counters and scanner charges wherever the protocol
  is deterministic (no heated dots), and statistically identical
  (1/4)**rounds behaviour where it is not;
* scanner erb charges tied to the actual magnetic bit operations the
  medium performed (the ``bit_cost`` reconciliation).
"""

import math

import numpy as np
import pytest

import repro.crypto.crc as crc_mod
import repro.crypto.manchester as man_mod
from repro.device.bitops import BitOps
from repro.device.scanner import Scanner
from repro.device.sector import E_CELLS, E_REGION_DOTS, ElectricalPayload
from repro.device.sero import DeviceConfig, SERODevice, VerifyStatus
from repro.device.timing import CostAccount, TimingModel
from repro.fs.fsck import deep_scan
from repro.fs.lfs import SeroFS
from repro.medium.geometry import MediumGeometry, geometry_for_blocks
from repro.medium.medium import MediumConfig, PatternedMedium

PAYLOAD = bytes(range(256)) * 2


def _medium(seed=2008, **kwargs) -> PatternedMedium:
    geom = MediumGeometry(cols=4096, rows=4, dots_per_block=64)
    return PatternedMedium(geom, MediumConfig(seed=seed, **kwargs))


def _device_pair(total_blocks=64, medium_config=None, **cfg):
    """Identically-seeded devices, one scalar and one span."""
    scalar = SERODevice.create(total_blocks, medium_config=medium_config,
                               config=DeviceConfig(span_engine=False, **cfg))
    span = SERODevice.create(total_blocks, medium_config=medium_config,
                             config=DeviceConfig(span_engine=True, **cfg))
    return scalar, span


def _heated_line(device, start=0, n=4):
    for pba in range(start + 1, start + n):
        device.write_block(pba, PAYLOAD)
    return device.heat_line(start, n, timestamp=7)


# -- erb_span protocol semantics --------------------------------------------


def test_erb_span_healthy_dots_all_pass_with_exact_counters():
    medium = _medium()
    ops = BitOps(medium)
    for rounds in (1, 2, 3):
        before = dict(medium.counters)
        verdict = ops.erb_span(0, 512, rounds=rounds)
        assert not verdict.any()
        assert medium.counters["mrb"] - before["mrb"] == 512 * (1 + 2 * rounds)
        assert medium.counters["mwb"] - before["mwb"] == 512 * 2 * rounds
        assert medium.counters["heat"] == before["heat"]


def test_erb_span_restores_magnetisation():
    medium = _medium()
    bits = [i % 2 for i in range(256)]
    medium.write_mag_span(0, bits)
    medium.heat_span(64, 96)
    BitOps(medium).erb_span(0, 256, rounds=2)
    readback = medium.read_mag_span(0, 64)
    assert readback.tolist() == bits[:64]


@pytest.mark.parametrize("rounds,lo,hi", [
    (1, 0.22, 0.28),   # miss rate 1/4
    (2, 0.045, 0.080),  # 1/16
    (3, 0.008, 0.024),  # 1/64
])
def test_erb_span_reproduces_miss_rate(rounds, lo, hi):
    medium = _medium(seed=99)
    medium.heat_span(0, 4096)
    misses = (~BitOps(medium).erb_span(0, 4096, rounds=rounds)).sum()
    assert lo < misses / 4096 < hi


def test_erb_span_heated_counters_respect_early_exit():
    medium = _medium(seed=5)
    medium.heat_span(0, 4096)
    rounds = 2
    before = dict(medium.counters)
    BitOps(medium).erb_span(0, 4096, rounds=rounds)
    mrb = medium.counters["mrb"] - before["mrb"]
    mwb = medium.counters["mwb"] - before["mwb"]
    # every dot: 1 initial read; then between 1 verification (fail
    # immediately) and 2*rounds (pass everything)
    assert 4096 * 2 <= mrb <= 4096 * (1 + 2 * rounds)
    assert mrb == mwb + 4096
    # expected verifies per heated dot: verification k runs iff the k
    # previous ones passed, so E = 1 + 1/2 + 1/4 + 1/8 = 1.875
    assert mwb / 4096 == pytest.approx(1.875, rel=0.05)


def test_erb_span_defective_dots_read_heated_deterministically():
    medium = _medium(seed=11, switching_sigma=0.5, write_field=1.0)
    assert medium._k_scale is not None
    defective = np.flatnonzero(
        (medium._k_scale > medium.config.write_field)
        & (medium._sharpness >= 0.5))[:64]
    assert defective.size
    before = dict(medium.counters)
    verdict = BitOps(medium).erb_at(defective, rounds=2)
    assert verdict.all()
    # a defective dot fails the first verification: 2 reads, 1 write
    assert medium.counters["mrb"] - before["mrb"] == 2 * defective.size
    assert medium.counters["mwb"] - before["mwb"] == defective.size


def test_erb_span_matches_scalar_erb_per_dot_when_deterministic():
    scalar_medium = _medium()
    span_medium = _medium()
    scalar_ops = BitOps(scalar_medium)
    verdicts = [scalar_ops.erb(i, rounds=2) for i in range(128)]
    span_verdicts = BitOps(span_medium).erb_span(0, 128, rounds=2)
    assert [v == "H" for v in verdicts] == span_verdicts.tolist()
    assert scalar_medium.counters == span_medium.counters


def test_erb_span_validation():
    medium = _medium()
    ops = BitOps(medium)
    with pytest.raises(ValueError):
        ops.erb_span(0, 8, rounds=0)
    from repro.errors import DotAddressError
    with pytest.raises(DotAddressError):
        ops.erb_span(0, medium.geometry.total_dots + 1)
    with pytest.raises(DotAddressError):
        ops.erb_at([-1])
    assert ops.erb_span(5, 5).size == 0


# -- heat_span vectorization -------------------------------------------------


def test_heat_span_vectorized_matches_scalar():
    vec = _medium()
    ref = _medium()
    pattern = np.zeros(E_REGION_DOTS, dtype=bool)
    pattern[::3] = True
    vec.heat_span(0, E_REGION_DOTS, pattern, vectorized=True)
    ref.heat_span(0, E_REGION_DOTS, pattern, vectorized=False)
    assert np.array_equal(vec._sharpness, ref._sharpness)
    assert np.array_equal(vec._mag, ref._mag)
    assert vec.counters == ref.counters


def test_heat_span_collateral_forces_scalar_path():
    geom = MediumGeometry(cols=64, rows=4, dots_per_block=16)
    vec = PatternedMedium(geom, MediumConfig(collateral_heating=True))
    ref = PatternedMedium(geom, MediumConfig(collateral_heating=True))
    center = geom.dot_index(2, 32)
    # even with vectorized requested, collateral heating must take the
    # per-dot path so neighbours receive their attenuated pulses
    vec.heat_span(center, center + 2, vectorized=True)
    ref.heat_dot(center)
    ref.heat_dot(center + 1)
    assert vec.is_heated(center)
    assert np.array_equal(vec._sharpness, ref._sharpness)
    assert vec.counters == ref.counters


def test_snapshot_states_vectorized():
    medium = _medium()
    medium.write_mag_span(0, [1, 0, 1, 1, 0, 0, 1, 0])
    medium.heat_span(2, 4)
    states = medium.snapshot_states(0, 8)
    assert states == ["1", "0", "H", "H", "0", "0", "1", "0"]
    assert all(isinstance(s, str) for s in states)


# -- device-level scalar<->span equivalence ----------------------------------


def test_ers_block_virgin_exact_equivalence():
    scalar, span = _device_pair(16)
    s_states, s_bits = scalar.ers_block(3)
    v_states, v_bits = span.ers_block(3)
    assert s_states == v_states
    assert s_bits == v_bits
    assert scalar.medium.counters == span.medium.counters
    assert scalar.account.op_counts == span.account.op_counts
    assert scalar.account.elapsed == pytest.approx(span.account.elapsed)


def test_written_line_equivalent_payload_and_verdicts():
    scalar, span = _device_pair(64)
    rec_s = _heated_line(scalar)
    rec_v = _heated_line(span)
    assert rec_s.line_hash == rec_v.line_hash
    p_s, t_s, v_s = scalar._ers_payload(0)
    p_v, t_v, v_v = span._ers_payload(0)
    assert p_s == p_v
    assert (t_s, v_s) == (t_v, v_v) == ([], False)
    assert scalar.verify_line(0).status is VerifyStatus.INTACT
    assert span.verify_line(0).status is VerifyStatus.INTACT


def test_probe_block_equivalent_verdicts_and_charges():
    scalar, span = _device_pair(64)
    _heated_line(scalar)
    _heated_line(span)
    # drop the heat_line charges: their ers retry counts are
    # RNG-dependent; probing itself must charge identically
    scalar.account.reset()
    span.account.reset()
    for pba in range(16):
        assert scalar.probe_block_electrical(pba) == \
            span.probe_block_electrical(pba)
    # probing charges the fixed protocol cost in both modes
    assert scalar.account.by_category["erb"] == \
        pytest.approx(span.account.by_category["erb"])


def test_tampered_line_detected_in_both_modes():
    for device in _device_pair(64):
        _heated_line(device)
        start, _ = device.geometry.block_span(0)
        heated = device.medium.image_heated()[start:start + E_REGION_DOTS]
        # make the first written cell illegal (HH) by heating its twin
        cells = heated.reshape(-1, 2)
        cell = int(np.flatnonzero(cells.sum(axis=1) == 1)[0])
        twin = start + 2 * cell + (0 if cells[cell, 1] else 1)
        device.medium.heat_dot(twin)
        result = device.verify_line(0)
        assert result.status is VerifyStatus.CELL_TAMPERED
        assert cell in result.tampered_cells


def test_bulk_erase_detected_in_both_modes():
    for device in _device_pair(64):
        _heated_line(device)
        device.medium.bulk_erase()
        assert device.verify_line(0).status is VerifyStatus.UNREADABLE


def test_defective_media_equivalent_verdicts():
    mcfg = MediumConfig(switching_sigma=0.5, write_field=1.0, seed=3)
    scalar, span = _device_pair(32, medium_config=mcfg)
    scalar.format()
    span.format()
    assert scalar.bad_blocks == span.bad_blocks
    assert scalar.fragile_blocks == span.fragile_blocks
    probed = [pba for pba in range(32) if pba not in scalar.bad_blocks][:8]
    for pba in probed:
        assert scalar.probe_block_electrical(pba) == \
            span.probe_block_electrical(pba)


def test_scan_lines_equivalent_recovery():
    scalar, span = _device_pair(64)
    for device in (scalar, span):
        _heated_line(device, start=0, n=4)
        _heated_line(device, start=8, n=8)
    recovered_s = scalar.scan_lines()
    recovered_v = span.scan_lines()
    assert [(r.start, r.n_blocks, r.timestamp, r.line_hash)
            for r in recovered_s] == \
        [(r.start, r.n_blocks, r.timestamp, r.line_hash)
         for r in recovered_v]


def test_ers_payload_packbits_roundtrip():
    _, span = _device_pair(64)
    record = _heated_line(span)
    payload, tampered, virgin = span._ers_payload(0)
    assert not tampered and not virgin
    meta = ElectricalPayload.unpack(payload)
    assert meta.line_hash == record.line_hash
    assert meta.timestamp == record.timestamp


def test_deep_scan_reports_cost():
    fs = SeroFS.format(SERODevice.create(256))
    fs.create("/keep", b"evidence " * 40)
    fs.heat_file("/keep")
    report = deep_scan(fs.device)
    assert report.intact_count == 1
    assert report.blocks_scanned == 256
    assert report.device_seconds > 0.0


# -- cost accounting reconciliation ------------------------------------------


@pytest.mark.parametrize("span_engine", [False, True])
def test_erb_charges_tie_to_medium_counters(span_engine):
    device = SERODevice.create(
        16, config=DeviceConfig(span_engine=span_engine))
    rounds = device.config.erb_rounds
    before = dict(device.medium.counters)
    device.ers_block(3)
    erb_ops = device.account.op_counts["erb"]
    # a virgin block retries every cell to the limit
    assert erb_ops == 2 * E_CELLS * (1 + device.config.ers_cell_retries)
    # healthy dots run the full 1 + 4*rounds bit operations per erb
    mrb = device.medium.counters["mrb"] - before["mrb"]
    mwb = device.medium.counters["mwb"] - before["mwb"]
    assert mrb + mwb == erb_ops * device.bitops.bit_cost(rounds)
    expected_time = math.ceil(erb_ops / device.timing.parallelism) * \
        device.timing.t_erb_for(rounds)
    assert device.account.by_category["erb"] == pytest.approx(expected_time)


@pytest.mark.parametrize("span_engine", [False, True])
def test_erb_charges_bound_heated_medium_counters(span_engine):
    device = SERODevice.create(
        64, config=DeviceConfig(span_engine=span_engine))
    _heated_line(device)
    device.account.reset()
    before = dict(device.medium.counters)
    device.ers_block(0)
    erb_ops = device.account.op_counts["erb"]
    mrb = device.medium.counters["mrb"] - before["mrb"]
    mwb = device.medium.counters["mwb"] - before["mwb"]
    # heated dots exit the sequence early, so the scanner's protocol
    # charge upper-bounds the magnetic work the medium actually did
    assert mrb + mwb <= erb_ops * device.bitops.bit_cost(device.config.erb_rounds)
    assert mrb + mwb >= erb_ops * 3  # >= 2 reads + 1 write per erb


def test_t_erb_for_matches_bit_cost():
    timing = TimingModel()
    ops = BitOps(PatternedMedium(MediumGeometry(cols=16, rows=1,
                                                dots_per_block=16)))
    for rounds in (1, 2, 3, 5):
        assert timing.t_erb_for(rounds) == pytest.approx(
            ops.bit_cost(rounds) * timing.t_mrb)
    assert timing.t_erb_for(1) == pytest.approx(timing.t_erb)
    with pytest.raises(ValueError):
        timing.t_erb_for(0)


# -- scanner seek regression (simplified branch) ------------------------------


def _scanner():
    from repro.device.sector import DOTS_PER_BLOCK

    geom = geometry_for_blocks(64, DOTS_PER_BLOCK)
    return Scanner(geometry=geom, timing=TimingModel(), account=CostAccount())


def test_seek_sequential_continuation_is_free():
    scanner = _scanner()
    first = scanner.seek_to_block(1)
    assert first > 0.0
    assert all(scanner.seek_to_block(pba) == 0.0 for pba in range(2, 10))
    assert scanner.account.op_counts.get("seek", 0) == 1  # only the first


def test_seek_repeated_block_charges_once():
    scanner = _scanner()
    first = scanner.seek_to_block(40)
    assert first > 0.0
    assert scanner.seek_to_block(40) == 0.0
    assert scanner.seek_to_block(40) == 0.0
    assert scanner.account.elapsed == pytest.approx(first)


def test_seek_random_access_charges_expected_time():
    scanner = _scanner()
    scanner.seek_to_block(0)
    expected = 0.0
    for pba in (40, 3, 63, 22):
        x, y = scanner._field_position(pba)
        distance = max(abs(x - scanner._x), abs(y - scanner._y))
        expected += scanner.timing.seek_time(distance)
        assert scanner.seek_to_block(pba) == pytest.approx(
            scanner.timing.seek_time(distance))
    assert scanner.account.by_category["seek"] == pytest.approx(expected)


# -- crypto scalar<->vectorized equivalence -----------------------------------


@pytest.mark.parametrize("n", [0, 1, 7, 8, 13, 64, 256, 536, 537])
def test_crc32_fast_path_matches_scalar(n):
    rng = np.random.default_rng(n)
    data = rng.integers(0, 256, size=n, dtype=np.uint8).tobytes()
    seed = int(rng.integers(0, 1 << 32))
    fast = crc_mod.crc32(data)
    fast_seeded = crc_mod.crc32(data, seed)
    crc_mod.USE_VECTORIZED = False
    try:
        assert fast == crc_mod.crc32(data)
        assert fast_seeded == crc_mod.crc32(data, seed)
    finally:
        crc_mod.USE_VECTORIZED = None


@pytest.mark.parametrize("n", [0, 1, 2, 3, 12, 14, 255])
def test_crc16_fast_path_matches_scalar(n):
    rng = np.random.default_rng(n)
    data = rng.integers(0, 256, size=n, dtype=np.uint8).tobytes()
    fast = crc_mod.crc16_ccitt(data)
    crc_mod.USE_VECTORIZED = False
    try:
        assert fast == crc_mod.crc16_ccitt(data)
    finally:
        crc_mod.USE_VECTORIZED = None


def test_manchester_fast_paths_match_scalar():
    rng = np.random.default_rng(42)
    for n in (0, 1, 2, 16, 256):
        data = rng.integers(0, 256, size=n, dtype=np.uint8).tobytes()
        vec_pattern = man_mod.encode_bytes(data)
        vec_decoded = man_mod.decode_bytes(vec_pattern)
        vec_result = man_mod.decode_pattern(vec_pattern)
        man_mod.USE_VECTORIZED = False
        try:
            ref_pattern = man_mod.encode_bytes(data)
            assert list(vec_pattern) == ref_pattern
            assert vec_decoded == man_mod.decode_bytes(ref_pattern) == data
            ref_result = man_mod.decode_pattern(ref_pattern)
        finally:
            man_mod.USE_VECTORIZED = None
        assert vec_result.bits == ref_result.bits
        assert vec_result.tampered_cells == ref_result.tampered_cells
        assert vec_result.unused_cells == ref_result.unused_cells


def test_manchester_vectorized_flags_tamper_and_unused():
    pattern = np.asarray(man_mod.encode_bytes(b"\xa5"), dtype=bool)
    pattern[0] = True   # cell 0 was UH (bit 1) -> HH
    pattern[2] = pattern[3] = False  # cell 1 -> UU
    result = man_mod.decode_pattern(pattern)
    assert result.tampered_cells == [0]
    assert result.unused_cells == [1]
    assert result.bits[0] is None and result.bits[1] is None
    assert result.bits[2:] == [1, 0, 0, 1, 0, 1]
