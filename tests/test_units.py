"""Unit helpers and exception hierarchy tests."""

import math

import pytest

from repro import errors
from repro.units import (
    bits_to_bytes,
    celsius_to_kelvin,
    deg_to_rad,
    is_power_of_two,
    kelvin_to_celsius,
    rad_to_deg,
)


def test_temperature_conversions_inverse():
    for t in (-40.0, 0.0, 25.0, 700.0):
        assert kelvin_to_celsius(celsius_to_kelvin(t)) == pytest.approx(t)


def test_absolute_zero():
    assert celsius_to_kelvin(-273.15) == pytest.approx(0.0)


def test_angle_conversions():
    assert deg_to_rad(180.0) == pytest.approx(math.pi)
    assert rad_to_deg(math.pi / 2) == pytest.approx(90.0)


def test_bits_to_bytes_ceiling():
    assert bits_to_bytes(0) == 0
    assert bits_to_bytes(1) == 1
    assert bits_to_bytes(8) == 1
    assert bits_to_bytes(9) == 2


@pytest.mark.parametrize("n, expected", [
    (1, True), (2, True), (4096, True),
    (0, False), (-4, False), (3, False), (6, False),
])
def test_is_power_of_two(n, expected):
    assert is_power_of_two(n) is expected


def test_exception_hierarchy_roots():
    # every library exception is catchable as ReproError
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception) \
                and obj is not errors.ReproError:
            assert issubclass(obj, errors.ReproError), name


def test_tamper_evident_family():
    assert issubclass(errors.HashMismatchError, errors.TamperEvidentError)
    assert issubclass(errors.InvalidCellError, errors.TamperEvidentError)


def test_device_family():
    for exc in (errors.BadBlockError, errors.ReadError, errors.WriteError,
                errors.HeatedBlockError, errors.HeatError,
                errors.AlignmentError):
        assert issubclass(exc, errors.DeviceError)


def test_fs_family():
    for exc in (errors.NoSpaceError, errors.FileNotFoundError_,
                errors.ImmutableFileError, errors.DirectoryNotEmptyError):
        assert issubclass(exc, errors.FileSystemError)
