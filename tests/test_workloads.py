"""Workload generator, database, archive and trace tests."""

import pytest

from repro.device.sero import SERODevice, VerifyStatus
from repro.fs.lfs import SeroFS
from repro.workloads.archival import ComplianceArchive
from repro.workloads.database import SimpleDatabase, oltp_then_snapshot
from repro.workloads.synthetic import (
    FileOp,
    OpKind,
    SyntheticWorkload,
    payload_for,
    run_workload,
)
from repro.workloads.traces import Trace, record_workload


def test_workload_deterministic():
    ops_a = list(SyntheticWorkload(seed=5, n_files=4, n_ops=20).generate())
    ops_b = list(SyntheticWorkload(seed=5, n_files=4, n_ops=20).generate())
    assert ops_a == ops_b


def test_workload_different_seeds_differ():
    ops_a = list(SyntheticWorkload(seed=1, n_files=4, n_ops=30).generate())
    ops_b = list(SyntheticWorkload(seed=2, n_files=4, n_ops=30).generate())
    assert ops_a != ops_b


def test_payload_deterministic():
    op = FileOp(OpKind.CREATE, "/x", 100, seed=9)
    assert payload_for(op) == payload_for(op)
    assert len(payload_for(op)) == 100


def test_run_workload_counts(big_fs):
    workload = SyntheticWorkload(n_files=8, n_ops=40, mean_size=1024, seed=2)
    counts = run_workload(big_fs, workload)
    assert counts["create"] >= 8
    assert sum(counts.values()) > 0


def test_workload_never_mutates_heated_files(big_fs):
    workload = SyntheticWorkload(n_files=6, n_ops=60, mean_size=800,
                                 p_heat=0.3, seed=4)
    run_workload(big_fs, workload)
    for label, result in big_fs.verify_all_files().items():
        assert result.status is VerifyStatus.INTACT, label


def test_database_crud(fs):
    db = SimpleDatabase(fs)
    db.put(1, b"alice")
    db.put(2, b"bob")
    assert db.get(1) == b"alice"
    db.delete(1)
    assert db.get(1) is None
    assert len(db) == 1


def test_database_record_size_limit(fs):
    db = SimpleDatabase(fs)
    with pytest.raises(ValueError):
        db.put(1, b"\x00" * 100)


def test_database_snapshot_and_verify(big_fs):
    db = SimpleDatabase(big_fs)
    db.put(1, b"before")
    db.snapshot("audit", timestamp=10)
    db.put(1, b"after")  # live table keeps evolving
    snap = db.read_snapshot("audit")
    assert snap[1] == b"before"
    assert db.get(1) == b"after"
    assert db.verify_snapshot("audit").status is VerifyStatus.INTACT


def test_oltp_then_snapshot(big_fs):
    db = SimpleDatabase(big_fs)
    records = oltp_then_snapshot(db, n_transactions=30, snapshot_every=15)
    assert len(records) == 2
    assert len(db.snapshots()) == 2


def test_archive_periods(big_fs):
    archive = ComplianceArchive(big_fs, batch_bytes=1024,
                                retention_periods=10)
    for period in range(5):
        archive.run_period(period)
    assert len(archive.batches) == 5
    audit = archive.audit()
    assert all(r.status is VerifyStatus.INTACT for r in audit.values())


def test_archive_expiry_and_decommission(big_fs):
    archive = ComplianceArchive(big_fs, batch_bytes=512, retention_periods=3)
    for period in range(4):
        archive.run_period(period)
    assert len(archive.expired(current_period=3)) == 1
    assert not archive.decommissionable(3)
    assert archive.decommissionable(100)


def test_archive_run_until_full():
    fs = SeroFS.format(SERODevice.create(128))
    archive = ComplianceArchive(fs, batch_bytes=2048)
    done = archive.run_until_full(max_periods=100)
    assert 0 < done < 100  # the device filled up
    assert fs.free_space_blocks() < 16


def test_trace_roundtrip():
    workload = SyntheticWorkload(n_files=3, n_ops=10, seed=7)
    trace = record_workload(workload)
    assert len(trace) == 13
    parsed = Trace.loads(trace.dumps())
    assert parsed.ops == trace.ops


def test_trace_loads_rejects_garbage():
    with pytest.raises(ValueError):
        Trace.loads("create /x\n")


def test_trace_replay_matches_direct_run():
    workload = SyntheticWorkload(n_files=4, n_ops=20, mean_size=600, seed=8)
    fs_direct = SeroFS.format(SERODevice.create(512))
    fs_replay = SeroFS.format(SERODevice.create(512))
    run_workload(fs_direct, workload)
    trace = record_workload(workload)
    trace.replay(fs_replay, ignore_errors=True)
    for name in fs_direct.listdir("/"):
        assert fs_direct.read(f"/{name}") == fs_replay.read(f"/{name}")
